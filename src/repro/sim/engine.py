"""The discrete-event simulation environment (event loop).

:class:`Environment` owns the simulated clock and the event heap. All
other kernel objects (events, timeouts, processes) are created through
its factory methods so user code rarely imports anything else::

    env = Environment()
    env.process(my_generator(env))
    env.run(until=600.0)
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.sim.errors import StopSimulation, UnhandledProcessError
from repro.sim.events import Condition, Event, Timeout, all_of, any_of
from repro.sim.process import Process, ProcessGenerator

#: Scheduling priorities: URGENT events process before NORMAL ones that
#: share the same timestamp (used for bookkeeping that must observe state
#: before user processes run).
URGENT = 0
NORMAL = 1


#: A step monitor receives ``(when, sequence, event)`` just before the
#: event's callbacks run. Monitors must not mutate simulation state.
StepMonitor = _t.Callable[[float, int, "Event"], None]


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._span_ids = count(1)
        self._active_process: Process | None = None
        self._monitors: list[StepMonitor] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def queue_depth(self) -> int:
        """Scheduled-but-unprocessed events currently on the heap
        (observability probe; see :mod:`repro.obs.profiling`)."""
        return len(self._heap)

    def next_span_id(self) -> int:
        """Allocate the next tracing span id for this run.

        Ids are scoped to the environment (starting at 1), so two
        identically seeded runs — even in the same process — produce
        identical span ids (see :mod:`repro.tracing.span`).
        """
        return next(self._span_ids)

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition satisfied once all ``events`` succeed."""
        return all_of(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition satisfied once any of ``events`` succeeds."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Scheduling / stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Put a triggered event onto the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event))

    def call_at(self, when: float, callback: _t.Callable[[], None],
                priority: int = NORMAL) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``.

        Returns the underlying event; the callback can be descheduled by
        simply ignoring the event (see lazy invalidation in
        :mod:`repro.resources.cpu`).
        """
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        event = Event(self)
        event.callbacks.append(lambda _e: callback())
        event._ok = True
        event._value = None
        heapq.heappush(self._heap, (when, priority, next(self._eid), event))
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def add_monitor(self, monitor: StepMonitor) -> None:
        """Observe every event the loop processes (validation hooks).

        Monitors are invoked *before* the event's callbacks with
        ``(when, sequence, event)`` where ``sequence`` is the event's
        scheduling serial — a deterministic, replayable step identity.
        They are read-only observers: raising from one aborts the run
        (this is how invariant checkers fail fast).
        """
        self._monitors.append(monitor)

    def remove_monitor(self, monitor: StepMonitor) -> None:
        """Detach a previously added monitor (no-op if absent)."""
        if monitor in self._monitors:
            self._monitors.remove(monitor)

    def step(self) -> None:
        """Process the single next event."""
        when, _prio, eid, event = heapq.heappop(self._heap)
        self._now = when
        if self._monitors:
            for monitor in self._monitors:
                monitor(when, eid, event)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            cause = _t.cast(BaseException, event._value)
            error = UnhandledProcessError(
                f"unhandled failure in simulation at t={when:.6f}: {cause!r}")
            raise error from cause

    def _run_loop(self, horizon: float) -> None:
        """The hot loop: :meth:`step` inlined with everything bound to
        locals.

        Identical semantics and event ordering to calling ``step()`` in
        a loop — the inlining only removes per-event attribute lookups
        and method-call overhead, which dominate the cost of a
        timeout-schedule-fire cycle. ``self._monitors`` is bound once
        (add/remove mutate the list in place, so mid-run changes are
        still honored) and ``self._heap`` is never rebound elsewhere.
        """
        heap = self._heap
        pop = heapq.heappop
        monitors = self._monitors
        while heap and heap[0][0] <= horizon:
            when, _prio, eid, event = pop(heap)
            self._now = when
            if monitors:
                for monitor in monitors:
                    monitor(when, eid, event)
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                cause = _t.cast(BaseException, event._value)
                error = UnhandledProcessError(
                    f"unhandled failure in simulation at t={when:.6f}: "
                    f"{cause!r}")
                raise error from cause

    def run(self, until: float | Event | None = None) -> object:
        """Run the event loop.

        Args:
            until: stop criterion — an absolute time, an event (stop when it
                triggers, returning its value), or ``None`` to exhaust all
                events.

        Returns:
            The value of ``until`` when it is an event, else ``None``.
        """
        stop_event: Event | None = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")

        try:
            self._run_loop(horizon)
        except StopSimulation:
            pass

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event.ok:
                    raise _t.cast(BaseException, stop_event.value)
                return stop_event.value
            raise RuntimeError(
                "run() ran out of events before the stop event triggered")
        if horizon != float("inf"):
            self._now = horizon
        return None

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation
