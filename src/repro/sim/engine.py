"""The discrete-event simulation environment (event loop).

:class:`Environment` owns the simulated clock and the event heap. All
other kernel objects (events, timeouts, processes) are created through
its factory methods so user code rarely imports anything else::

    env = Environment()
    env.process(my_generator(env))
    env.run(until=600.0)
"""

from __future__ import annotations

import heapq
import os
import typing as _t
from itertools import count

from repro.sim.errors import StopSimulation, UnhandledProcessError
from repro.sim.events import (Condition, Event, EventBatch, Timeout,
                              all_of, any_of)
from repro.sim.process import Process, ProcessGenerator
from repro.sim.wheel import TimerWheel

#: Recognized scheduler backends (see ``Environment(scheduler=...)``).
SCHEDULERS = ("heap", "wheel")

#: Scheduling priorities: URGENT events process before NORMAL ones that
#: share the same timestamp (used for bookkeeping that must observe state
#: before user processes run).
URGENT = 0
NORMAL = 1


#: A step monitor receives ``(when, sequence, event)`` just before the
#: event's callbacks run. Monitors must not mutate simulation state.
StepMonitor = _t.Callable[[float, int, "Event"], None]


class Environment:
    """Execution environment for a single simulation run.

    Args:
        initial_time: starting value of the simulated clock.
        scheduler: event-queue backend — ``"heap"`` (the classic global
            binary heap; default) or ``"wheel"`` (an indexed calendar
            queue, see :mod:`repro.sim.wheel`, which wins once the
            pending-event population reaches fleet scale). ``None``
            reads ``REPRO_SCHEDULER`` from the environment, falling
            back to ``"heap"``. Both backends process byte-identical
            event streams (proven by the replay-fingerprint suite);
            only the cost profile differs.
    """

    def __init__(self, initial_time: float = 0.0,
                 scheduler: str | None = None) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._span_ids = count(1)
        self._active_process: Process | None = None
        self._monitors: list[StepMonitor] = []
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER", "heap")
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             f"(have: {', '.join(SCHEDULERS)})")
        self._scheduler = scheduler
        # In wheel mode ``_heap`` stays in place as a small *inbox*:
        # every producer hot path keeps its inlined heappush untouched,
        # and the run loop drains the inbox into the wheel each
        # iteration. The inbox never holds more than the events
        # scheduled by one callback burst, so its heappushes stay O(1)-
        # ish while the wheel absorbs the fleet-scale pending set.
        self._wheel: TimerWheel | None = (
            TimerWheel(start=self._now) if scheduler == "wheel" else None)

    @property
    def scheduler(self) -> str:
        """The active scheduler backend name."""
        return self._scheduler

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def queue_depth(self) -> int:
        """Scheduled-but-unprocessed entries currently queued
        (observability probe; see :mod:`repro.obs.profiling`). A batch
        scheduled via :meth:`schedule_batch` counts as one entry."""
        if self._wheel is not None:
            return len(self._heap) + len(self._wheel)
        return len(self._heap)

    def next_span_id(self) -> int:
        """Allocate the next tracing span id for this run.

        Ids are scoped to the environment (starting at 1), so two
        identically seeded runs — even in the same process — produce
        identical span ids (see :mod:`repro.tracing.span`).
        """
        return next(self._span_ids)

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition satisfied once all ``events`` succeed."""
        return all_of(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> Condition:
        """Condition satisfied once any of ``events`` succeeds."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Scheduling / stepping
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Put a triggered event onto the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event))

    def call_at(self, when: float, callback: _t.Callable[[], None],
                priority: int = NORMAL) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``.

        Returns the underlying event; the callback can be descheduled by
        simply ignoring the event (see lazy invalidation in
        :mod:`repro.resources.cpu`).
        """
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        event = Event(self)
        event.callbacks.append(lambda _e: callback())
        event._ok = True
        event._value = None
        heapq.heappush(self._heap, (when, priority, next(self._eid), event))
        return event

    def schedule_batch(self, events: _t.Sequence[Event],
                       priority: int = NORMAL) -> None:
        """Schedule a burst of *already-triggered* events at the current
        time as one scheduler entry.

        Every event must have its value set (``_value``/``_ok``) but not
        yet be scheduled — this is the batch analogue of the inlined
        ``succeed()`` push. The batch reserves consecutive event serials
        and the run loop applies members in order, so monitors and
        replay fingerprints observe exactly the stream that ``k``
        individual pushes would have produced.
        """
        n = len(events)
        if n == 0:
            return
        eid = self._eid
        if n == 1:
            heapq.heappush(self._heap,
                           (self._now, priority, next(eid), events[0]))
            return
        first = next(eid)
        for _ in range(n - 1):  # reserve consecutive serials for members
            next(eid)
        heapq.heappush(
            self._heap,
            (self._now, priority, first,
             _t.cast(Event, EventBatch(events))))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        head = self._heap[0][0] if self._heap else float("inf")
        if self._wheel is not None:
            wheel_head = self._wheel.peek()
            return head if head <= wheel_head else wheel_head
        return head

    def add_monitor(self, monitor: StepMonitor) -> None:
        """Observe every event the loop processes (validation hooks).

        Monitors are invoked *before* the event's callbacks with
        ``(when, sequence, event)`` where ``sequence`` is the event's
        scheduling serial — a deterministic, replayable step identity.
        They are read-only observers: raising from one aborts the run
        (this is how invariant checkers fail fast).
        """
        self._monitors.append(monitor)

    def remove_monitor(self, monitor: StepMonitor) -> None:
        """Detach a previously added monitor (no-op if absent)."""
        if monitor in self._monitors:
            self._monitors.remove(monitor)

    def step(self) -> None:
        """Process the single next event (one batch counts as one step)."""
        wheel = self._wheel
        if wheel is not None:
            inbox = self._heap
            if inbox:
                push = wheel.push
                for entry in inbox:
                    push(entry)
                inbox.clear()
            when, prio, eid, event = wheel.pop()
        else:
            when, prio, eid, event = heapq.heappop(self._heap)
        self._now = when
        if event.__class__ is EventBatch:
            self._apply_batch(when, prio, eid,
                              _t.cast(EventBatch, event))
            return
        if self._monitors:
            for monitor in self._monitors:
                monitor(when, eid, event)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            cause = _t.cast(BaseException, event._value)
            error = UnhandledProcessError(
                f"unhandled failure in simulation at t={when:.6f}: {cause!r}")
            raise error from cause

    def _apply_batch(self, when: float, priority: int, first_eid: int,
                     batch: EventBatch) -> None:
        """Apply a batch's members in order, as if pushed individually.

        Members carry the consecutive serials reserved at scheduling
        time. If a callback aborts the run mid-batch (``StopSimulation``
        or an unhandled failure), the unprocessed tail is re-queued
        under its original serials so a later ``run()`` resumes exactly
        where the stream stopped.
        """
        events = batch.events
        monitors = self._monitors
        index = 0
        try:
            for index, event in enumerate(events):
                if monitors:
                    eid = first_eid + index
                    for monitor in monitors:
                        monitor(when, eid, event)
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    cause = _t.cast(BaseException, event._value)
                    error = UnhandledProcessError(
                        f"unhandled failure in simulation at "
                        f"t={when:.6f}: {cause!r}")
                    raise error from cause
        except BaseException:
            rest = events[index + 1:]
            if len(rest) == 1:
                heapq.heappush(self._heap,
                               (when, priority, first_eid + index + 1,
                                rest[0]))
            elif rest:
                heapq.heappush(
                    self._heap,
                    (when, priority, first_eid + index + 1,
                     _t.cast(Event, EventBatch(rest))))
            raise

    def _run_loop(self, horizon: float) -> None:
        """The hot loop: :meth:`step` inlined with everything bound to
        locals.

        Identical semantics and event ordering to calling ``step()`` in
        a loop — the inlining only removes per-event attribute lookups
        and method-call overhead, which dominate the cost of a
        timeout-schedule-fire cycle. ``self._monitors`` is bound once
        (add/remove mutate the list in place, so mid-run changes are
        still honored) and ``self._heap`` is never rebound elsewhere.
        """
        heap = self._heap
        pop = heapq.heappop
        monitors = self._monitors
        batch_cls = EventBatch
        while heap and heap[0][0] <= horizon:
            when, prio, eid, event = pop(heap)
            self._now = when
            if event.__class__ is batch_cls:
                self._apply_batch(when, prio, eid,
                                  _t.cast(EventBatch, event))
                continue
            if monitors:
                for monitor in monitors:
                    monitor(when, eid, event)
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                cause = _t.cast(BaseException, event._value)
                error = UnhandledProcessError(
                    f"unhandled failure in simulation at t={when:.6f}: "
                    f"{cause!r}")
                raise error from cause

    def _run_loop_wheel(self, horizon: float) -> None:
        """Wheel-mode hot loop: drain the producer inbox into the wheel,
        then pop the global minimum from the wheel.

        Draining happens before every pop, so an event scheduled by a
        callback is always in the wheel before the next ordering
        decision — the processed stream is byte-identical to the heap
        loop's (same entries, same total order by ``(when, priority,
        eid)``).
        """
        inbox = self._heap
        wheel = self._wheel
        assert wheel is not None
        push = wheel.push
        wheel_peek = wheel.peek
        wheel_pop = wheel.pop
        monitors = self._monitors
        batch_cls = EventBatch
        while True:
            if inbox:
                for entry in inbox:
                    push(entry)
                inbox.clear()
            # Same stop rule as the heap loop: exhausted, or the next
            # entry lies past the horizon. The emptiness check is
            # explicit because ``peek() > horizon`` fails to stop an
            # empty wheel when horizon is inf (inf > inf is False).
            if wheel._len == 0 or wheel_peek() > horizon:
                return
            when, prio, eid, event = wheel_pop()
            self._now = when
            if event.__class__ is batch_cls:
                self._apply_batch(when, prio, eid,
                                  _t.cast(EventBatch, event))
                continue
            if monitors:
                for monitor in monitors:
                    monitor(when, eid, event)
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                cause = _t.cast(BaseException, event._value)
                error = UnhandledProcessError(
                    f"unhandled failure in simulation at t={when:.6f}: "
                    f"{cause!r}")
                raise error from cause

    def run(self, until: float | Event | None = None) -> object:
        """Run the event loop.

        Args:
            until: stop criterion — an absolute time, an event (stop when it
                triggers, returning its value), or ``None`` to exhaust all
                events.

        Returns:
            The value of ``until`` when it is an event, else ``None``.
        """
        stop_event: Event | None = None
        horizon = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})")

        try:
            if self._wheel is not None:
                self._run_loop_wheel(horizon)
            else:
                self._run_loop(horizon)
        except StopSimulation:
            pass

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event.ok:
                    raise _t.cast(BaseException, stop_event.value)
                return stop_event.value
            raise RuntimeError(
                "run() ran out of events before the stop event triggered")
        if horizon != float("inf"):
            self._now = horizon
        return None

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation
