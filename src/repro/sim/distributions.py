"""Service-time and think-time distributions.

A :class:`Distribution` is a tiny sampling object bound to nothing: the
random generator is passed at sampling time so the same distribution
object can be shared across components with distinct streams.
"""

from __future__ import annotations

import abc
import math

import numpy as np


class Distribution(abc.ABC):
    """A non-negative continuous distribution."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        """Draw ``n`` values as a list.

        For the numpy-backed distributions a batch draw consumes the
        generator's bit stream exactly as ``n`` single draws would, so
        batching is a pure performance optimization: hot paths amortize
        the per-call numpy overhead without changing the sampled
        sequence.
        """
        return [self.sample(rng) for _ in range(n)]

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution's expected value."""

    def scaled(self, factor: float) -> "Scaled":
        """This distribution with all draws multiplied by ``factor``."""
        return Scaled(self, factor)


class Constant(Distribution):
    """A degenerate distribution that always returns ``value``."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative value {value}")
        self._value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return [self._value] * n

    @property
    def mean(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Constant({self._value})"


class Exponential(Distribution):
    """Exponential distribution parameterized by its mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return rng.exponential(self._mean, n).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class LogNormal(Distribution):
    """Log-normal distribution parameterized by mean and coefficient of
    variation — the natural shape for request service times, which are
    right-skewed with a long tail."""

    def __init__(self, mean: float, cv: float = 0.5) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean}")
        if cv <= 0:
            raise ValueError(f"non-positive cv {cv}")
        self._mean = float(mean)
        self._cv = float(cv)
        sigma2 = math.log(1.0 + cv * cv)
        self._sigma = math.sqrt(sigma2)
        self._mu = math.log(mean) - sigma2 / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return rng.lognormal(self._mu, self._sigma, n).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv(self) -> float:
        """Coefficient of variation (stddev / mean)."""
        return self._cv

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean}, cv={self._cv})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid range [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._low, self._high))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return rng.uniform(self._low, self._high, n).tolist()

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self._low}, {self._high})"


class Erlang(Distribution):
    """Erlang-k distribution parameterized by shape ``k`` and mean —
    lower variance than exponential, useful for disciplined backends."""

    def __init__(self, k: int, mean: float) -> None:
        if k < 1:
            raise ValueError(f"shape must be >= 1, got {k}")
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean}")
        self._k = int(k)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self._k, self._mean / self._k))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return rng.gamma(self._k, self._mean / self._k, n).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Erlang(k={self._k}, mean={self._mean})"


class Pareto(Distribution):
    """Pareto (Lomax-style, shifted) distribution — heavy-tailed service
    times for worst-case tail experiments.

    Parameterized by mean and shape ``alpha > 1`` (smaller alpha means
    a heavier tail); samples are ``x_m * U^(-1/alpha)`` with ``x_m``
    chosen so the mean matches.
    """

    def __init__(self, mean: float, alpha: float = 2.5) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean}")
        if alpha <= 1.0:
            raise ValueError(
                f"alpha must exceed 1 for a finite mean, got {alpha}")
        self._mean = float(mean)
        self._alpha = float(alpha)
        self._scale = mean * (alpha - 1.0) / alpha  # x_m

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._scale * (1.0 + rng.pareto(self._alpha)))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return (self._scale * (1.0 + rng.pareto(self._alpha, n))).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def alpha(self) -> float:
        """Tail index (smaller = heavier)."""
        return self._alpha

    def __repr__(self) -> str:
        return f"Pareto(mean={self._mean}, alpha={self._alpha})"


class Weibull(Distribution):
    """Weibull distribution parameterized by mean and shape ``k`` —
    sub-exponential tails for ``k < 1``, disciplined for ``k > 1``."""

    def __init__(self, mean: float, k: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError(f"non-positive mean {mean}")
        if k <= 0:
            raise ValueError(f"non-positive shape {k}")
        self._mean = float(mean)
        self._k = float(k)
        self._scale = mean / math.gamma(1.0 + 1.0 / k)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self._k))

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        return (self._scale * rng.weibull(self._k, n)).tolist()

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def k(self) -> float:
        """Shape parameter."""
        return self._k

    def __repr__(self) -> str:
        return f"Weibull(mean={self._mean}, k={self._k})"


class Scaled(Distribution):
    """A distribution whose draws are multiplied by a constant factor.

    Used to model *state drift* (e.g. heavier requests after a dataset
    grows) without rebuilding the underlying distribution.
    """

    def __init__(self, base: Distribution, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"non-positive factor {factor}")
        self._base = base
        self._factor = float(factor)

    def sample(self, rng: np.random.Generator) -> float:
        return self._base.sample(rng) * self._factor

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> list[float]:
        factor = self._factor
        return [v * factor for v in self._base.sample_batch(rng, n)]

    @property
    def mean(self) -> float:
        return self._base.mean * self._factor

    def __repr__(self) -> str:
        return f"Scaled({self._base!r}, factor={self._factor})"
