"""Generator-based simulation processes.

A process is an ordinary Python generator that yields :class:`Event`
instances; the kernel resumes the generator with the event's value once
the event is processed. A :class:`Process` is itself an event, so
processes can wait on each other, e.g.::

    def child(env):
        yield env.timeout(5)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        assert result == "done"
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, PENDING

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

ProcessGenerator = _t.Generator[Event, object, object]


class Process(Event):
    """Wraps a generator and steps it through the events it yields."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None,
                 defer_to: list[Event] | None = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Event | None = None
        # Bootstrap event, built and scheduled inline (the equivalent of
        # Event(env) + add_callback + succeed without the method calls).
        bootstrap = Event.__new__(Event)
        bootstrap.env = env
        bootstrap.callbacks = [self._resume]
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap.defused = False
        if defer_to is None:
            heappush(env._heap, (env._now, 1, next(env._eid), bootstrap))
        else:
            # Caller collects bootstraps and schedules them as one burst
            # via Environment.schedule_batch (see Application.submit_batch).
            defer_to.append(bootstrap)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must still be alive and may not interrupt itself.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever we were waiting on, then resume immediately
        # with a pre-failed event carrying the Interrupt.
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        poke = Event(self.env)
        poke.callbacks.append(self._resume)
        poke.defused = True
        poke.fail(Interrupt(cause))

    def _resume(self, trigger: Event) -> None:
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if trigger._ok:
                value = trigger._value
                target = self._generator.send(
                    None if value is PENDING else value)
            else:
                trigger.defused = True
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            if isinstance(exc, Interrupt):
                # A process killed by an uncaught interrupt died
                # intentionally; only crash the simulation if a waiter
                # re-raises it, not merely because nobody was watching.
                self.defused = True
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}")
        # ``processed``/``add_callback`` inlined: this runs once per
        # yield, which is the single hottest resume path in the kernel.
        callbacks = target.callbacks
        if callbacks is None:
            # The event already fired; resume on the next kernel step so
            # that processes never starve the event loop.
            poke = Event(env)
            poke.callbacks.append(self._resume)
            poke.trigger(target)
        else:
            self._target = target
            callbacks.append(self._resume)
