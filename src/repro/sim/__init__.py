"""Discrete-event simulation kernel.

A minimal, deterministic SimPy-style kernel: an :class:`Environment`
event loop, generator-based :class:`Process` coroutines, and named
reproducible random streams.
"""

from repro.sim.distributions import (
    Constant,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    Pareto,
    Scaled,
    Uniform,
    Weibull,
)
from repro.sim.engine import NORMAL, URGENT, Environment, StepMonitor
from repro.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopSimulation,
    UnhandledProcessError,
)
from repro.sim.events import Condition, Event, Timeout, all_of, any_of
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rng import RandomStreams

__all__ = [
    "Condition",
    "Constant",
    "Distribution",
    "Environment",
    "Erlang",
    "Event",
    "EventAlreadyTriggered",
    "Exponential",
    "Interrupt",
    "LogNormal",
    "NORMAL",
    "Pareto",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "Scaled",
    "SimulationError",
    "StepMonitor",
    "StopSimulation",
    "Timeout",
    "URGENT",
    "Uniform",
    "UnhandledProcessError",
    "Weibull",
    "all_of",
    "any_of",
]
