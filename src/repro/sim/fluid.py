"""Hybrid fluid/DES fast path: analytic closed-population aggregation.

Discrete-event simulation pays per *event*; a million closed-loop users
emitting a handful of kernel events per second is tens of millions of
events per simulated minute — structurally unreachable however fast the
scheduler is. But the steady state of the simulator's service model (a
closed population of think-submit-wait users over processor-sharing
stations) is a product-form queueing network, which Mean Value Analysis
solves directly. This module aggregates the user population
analytically: a :class:`FluidModel` is extracted from an assembled
:class:`~repro.app.application.Application`, solved per trace sample by
approximate MVA (:func:`~repro.analysis.queueing.solve_mva_schweitzer`,
cost independent of the population), and swept across a workload trace
— 1M users over a full diurnal day in well under a second.

Two entry modes:

- **Pure fluid** (:func:`run_fluid`): the model comes straight from
  the topology (operation trees, declared demand distributions,
  replica/core counts). Accurate when the topology's declared demands
  are the truth — validated against exact MVA and the DES conformance
  family (see ``tests/test_fluid.py``).
- **Hybrid** (:func:`run_scenario_hybrid`): run a short DES *head
  window* first, calibrate per-service demands and visit ratios from
  what the replicas actually executed (``cpu.work_done`` over
  completions — which absorbs demand drift, Choice-branch frequencies
  and cancellation truncation the static walk can only approximate),
  then hand the remaining horizon to the fluid tail.

Approximations, stated once and tested where cheap: the fluid model is
a *steady-state-per-sample* (quasi-static) view — it tracks the trace's
population level but not transients between samples; pool admission
limits are not modeled (a saturated thread pool shifts waiting from CPU
queue to pool queue without changing throughput, but response-time
attribution differs); ``Parallel``/``Quorum`` fan-outs count every
member's demand (visit-correct, response-pessimistic since overlap is
ignored); ``Hedge`` counts the primary call only (hedge fire rate is
load-dependent — the hybrid head measures it instead); CPU context-
switch overhead is ignored by the static walk but *included* by hybrid
calibration head measurements of effective demand.
"""

from __future__ import annotations

import time
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.analysis.queueing import (MvaResult, Station, solve_mva,
                                     solve_mva_all,
                                     solve_mva_schweitzer)
from repro.app.application import Application
from repro.app.behavior import (Call, Choice, Compute, Hedge, Parallel,
                                Quorum, Step)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import Scenario, ScenarioResult
    from repro.workloads.traces import WorkloadTrace

#: Below this population the exact MVA recursion is cheap enough to
#: prefer over the Schweitzer fixed point (it is also the regime where
#: the approximation error peaks, near the saturation knee).
EXACT_POPULATION_CUTOFF = 512

#: Recursion guard for pathological (cyclic) call graphs.
_MAX_CALL_DEPTH = 64


@dataclass(frozen=True)
class FluidModel:
    """An application reduced to MVA stations plus a think time.

    Attributes:
        stations: one station per visited service (services the walk
            never reaches contribute nothing and are omitted).
        think_time: mean user think time ``Z`` in seconds.
        request_type: the entrypoint the model was extracted for.
    """

    stations: tuple[Station, ...]
    think_time: float
    request_type: str

    def solve(self, population: int) -> MvaResult:
        """Steady state at a fixed population (exact below
        :data:`EXACT_POPULATION_CUTOFF`, Schweitzer above)."""
        if population <= EXACT_POPULATION_CUTOFF:
            return solve_mva(self.stations, population, self.think_time)
        return solve_mva_schweitzer(self.stations, population,
                                    self.think_time)


def _station_from(name: str, visits: float, demand_per_visit: float,
                  capacity: float) -> Station:
    """Map a service's aggregate capacity onto an MVA station.

    ``capacity`` is the summed core limit across replicas. Integer
    multi-core capacity maps to an exact ``c``-server station;
    fractional capacity (CPU quotas) is rounded to the nearest server
    count with the demand rescaled so total capacity is preserved.
    """
    if capacity <= 0:
        raise ValueError(f"service {name!r} has no CPU capacity")
    if capacity <= 1.0 + 1e-9:
        # A single (possibly throttled) PS server running at rate
        # ``capacity``: stretch the demand accordingly.
        return Station(name, demand_per_visit / capacity, visits=visits)
    servers = max(1, int(round(capacity)))
    demand = demand_per_visit * (servers / capacity)
    return Station(name, demand, visits=visits, kind="multi",
                   servers=servers)


def build_fluid_model(app: Application, request_type: str,
                      think_time: float, at_time: float = 0.0,
                      demands: _t.Mapping[str, float] | None = None,
                      visits: _t.Mapping[str, float] | None = None
                      ) -> FluidModel:
    """Extract a :class:`FluidModel` from an assembled application.

    The walk descends the entrypoint's operation tree accumulating,
    per service, the expected visits and CPU demand of one user
    request: ``Compute`` steps contribute their distribution mean
    scaled by the service's ``demand_scale``; ``Call`` recurses;
    ``Parallel``/``Quorum`` recurse into every member; ``Hedge``
    recurses into the primary; ``Choice`` weights branches by
    ``weights_at(at_time)``.

    Args:
        app: the assembled application.
        request_type: registered entrypoint to model.
        think_time: mean user think time (``Z``).
        at_time: simulated time used to resolve Choice weight windows.
        demands: optional per-service mean-demand-per-visit overrides
            (seconds) — the hybrid calibration hook.
        visits: optional per-service visit-ratio overrides, used
            together with ``demands`` by the calibrated hybrid tail.
    """
    if request_type not in app.entrypoints:
        raise KeyError(f"unknown request type {request_type!r} "
                       f"(has: {sorted(app.entrypoints)})")
    if think_time < 0:
        raise ValueError(f"negative think_time {think_time}")

    visit_acc: dict[str, float] = {}
    demand_acc: dict[str, float] = {}

    def walk(steps: _t.Sequence[Step], service: str, weight: float,
             depth: int) -> None:
        if depth > _MAX_CALL_DEPTH:
            raise ValueError(
                f"call graph deeper than {_MAX_CALL_DEPTH} at "
                f"{service!r}; cycle?")
        scale = app.services[service].demand_scale
        for step in steps:
            if isinstance(step, Compute):
                demand_acc[service] = demand_acc.get(service, 0.0) + \
                    weight * step.demand.mean * scale
            elif isinstance(step, Call):
                enter(step.service, step.operation, weight, depth + 1)
            elif isinstance(step, (Parallel, Quorum)):
                for call in step.calls:
                    enter(call.service, call.operation, weight,
                          depth + 1)
            elif isinstance(step, Hedge):
                enter(step.call.service, step.call.operation, weight,
                      depth + 1)
            elif isinstance(step, Choice):
                branch_weights = step.weights_at(at_time)
                total = sum(branch_weights)
                for branch, w in zip(step.branches, branch_weights):
                    if w > 0:
                        walk(branch, service, weight * (w / total),
                             depth)

    def enter(service: str, operation: str, weight: float,
              depth: int) -> None:
        visit_acc[service] = visit_acc.get(service, 0.0) + weight
        walk(app.services[service].operations[operation].steps,
             service, weight, depth)

    entry_service, entry_op = app.entrypoints[request_type]
    enter(entry_service, entry_op, 1.0, 0)

    stations = []
    for name, v in visit_acc.items():
        v_eff = float(visits[name]) if visits is not None and \
            name in visits else v
        if v_eff <= 0:
            continue
        if demands is not None and name in demands:
            per_visit = float(demands[name])
        else:
            per_visit = demand_acc.get(name, 0.0) / v
        service = app.services[name]
        capacity = sum(r.cpu.cores for r in service.replicas)
        stations.append(_station_from(name, v_eff, per_visit, capacity))
    return FluidModel(stations=tuple(stations), think_time=think_time,
                      request_type=request_type)


@dataclass(frozen=True)
class FluidResult:
    """A fluid sweep across a workload trace.

    Attributes:
        request_type: modeled entrypoint.
        times: sample times (seconds, trace-relative).
        populations: user population at each sample.
        throughput: requests/second at each sample.
        response_times: mean end-to-end response time at each sample.
        elapsed: wall-clock seconds the sweep took.
    """

    request_type: str
    times: np.ndarray
    populations: np.ndarray
    throughput: np.ndarray
    response_times: np.ndarray
    elapsed: float

    @property
    def total_requests(self) -> float:
        """Trapezoidal estimate of requests served over the sweep."""
        return float(np.trapezoid(self.throughput, self.times))

    def summary(self) -> dict[str, float]:
        return {
            "samples": int(len(self.times)),
            "peak_users": int(self.populations.max(initial=0)),
            "total_requests": self.total_requests,
            "peak_throughput": float(self.throughput.max(initial=0.0)),
            "mean_response_time": float(self.response_times.mean())
            if len(self.response_times) else 0.0,
            "max_response_time": float(self.response_times.max(
                initial=0.0)),
            "elapsed_seconds": self.elapsed,
        }


def run_fluid(app: Application, request_type: str,
              trace: "WorkloadTrace", think_time: float,
              interval: float = 60.0,
              demands: _t.Mapping[str, float] | None = None,
              visits: _t.Mapping[str, float] | None = None
              ) -> FluidResult:
    """Sweep a fluid model across a trace (quasi-static steady states).

    The model is re-extracted per sample only when a Choice weight
    window makes it time-dependent; otherwise one extraction serves
    the whole sweep.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    start = time.perf_counter()
    samples = int(trace.duration / interval) + 1
    times = np.arange(samples, dtype=float) * interval
    populations = np.fromiter((trace.users(t) for t in times),
                              dtype=float, count=samples)

    time_varying = _has_choice_window(app, request_type)
    model = build_fluid_model(app, request_type, think_time,
                              at_time=0.0, demands=demands,
                              visits=visits)

    def seed_exact(current: FluidModel) -> dict[int, MvaResult]:
        # Populations under the exact cutoff would each trigger their
        # own O(n^2) recursion; one solve_mva_all pass at the largest
        # needed population yields them all (the recursion computes
        # every intermediate population anyway).
        largest = int(min(populations.max(), EXACT_POPULATION_CUTOFF))
        if populations.min() > EXACT_POPULATION_CUTOFF:
            return {}
        solved = solve_mva_all(current.stations, largest,
                               current.think_time)
        return dict(enumerate(solved))

    throughput = np.zeros(samples)
    response = np.zeros(samples)
    solutions = seed_exact(model)
    for i, t in enumerate(times):
        if time_varying:
            model = build_fluid_model(app, request_type, think_time,
                                      at_time=float(t), demands=demands,
                                      visits=visits)
            solutions = seed_exact(model)
        n = int(populations[i])
        solved = solutions.get(n)
        if solved is None:
            solved = solutions[n] = model.solve(n)
        throughput[i] = solved.throughput
        response[i] = solved.cycle_time
    return FluidResult(request_type=request_type, times=times,
                       populations=populations, throughput=throughput,
                       response_times=response,
                       elapsed=time.perf_counter() - start)


def _has_choice_window(app: Application, request_type: str) -> bool:
    seen: set[str] = set()
    entry_service, entry_op = app.entrypoints[request_type]
    stack = [(entry_service, entry_op)]
    while stack:
        service, operation = stack.pop()
        key = f"{service}.{operation}"
        if key in seen:
            continue
        seen.add(key)
        op = app.services[service].operations[operation]
        for step in op.steps:
            if _step_has_window(step):
                return True
        for call in op.downstream_calls():
            stack.append((call.service, call.operation))
    return False


def _step_has_window(step: Step) -> bool:
    if isinstance(step, Choice):
        if step.window is not None:
            return True
        return any(_step_has_window(s) for branch in step.branches
                   for s in branch)
    return False


# ----------------------------------------------------------------------
# Hybrid: DES head window calibrates the fluid tail
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HybridResult:
    """A DES head window plus a calibrated fluid tail.

    Attributes:
        des: the head window's full simulation result.
        fluid: the tail sweep (times are absolute, continuing the
            head's clock).
        model: the calibrated model used for the tail.
        calibrated_demands: measured per-service demand per visit.
        calibrated_visits: measured per-service visit ratios.
    """

    des: "ScenarioResult"
    fluid: FluidResult
    model: FluidModel
    calibrated_demands: dict[str, float]
    calibrated_visits: dict[str, float]

    def summary(self) -> dict[str, object]:
        return {
            "des_window": float(self.des.duration),
            "fluid": self.fluid.summary(),
            "calibrated_demands": dict(self.calibrated_demands),
            "calibrated_visits": dict(self.calibrated_visits),
        }


def calibrate_from_application(app: Application, request_type: str
                               ) -> tuple[dict[str, float],
                                          dict[str, float]]:
    """Measured ``(demands, visits)`` from a finished (or paused) run.

    Demand per visit is useful core-seconds executed over completions
    (live replicas only); visit ratio is service completions over
    end-to-end completions. Services with no completions are omitted —
    the static walk's estimate stands in for them.
    """
    total = app.latency[request_type].total
    demands: dict[str, float] = {}
    visits: dict[str, float] = {}
    if total <= 0:
        return demands, visits
    for name, service in app.services.items():
        completed = service.metrics.total_completed
        if completed <= 0:
            continue
        work = sum(r.cpu.work_done() for r in service.replicas)
        demands[name] = work / completed
        visits[name] = completed / total
    return demands, visits


def run_scenario_hybrid(scenario: "Scenario", duration: float,
                        des_window: float = 60.0,
                        interval: float = 60.0,
                        fluid_trace: "WorkloadTrace | None" = None
                        ) -> HybridResult:
    """Run the head of a scenario in DES, the tail as calibrated fluid.

    The head window runs the ordinary event-driven simulation
    (controllers, faults, tracing — everything). At the switchover the
    per-service demands and visit ratios actually executed are
    measured and pinned into the fluid model, which then sweeps the
    remaining trace horizon analytically. The scenario's first driver
    must be a closed-loop driver (it supplies the trace and think
    time).

    ``fluid_trace`` swaps in a different trace for the analytic tail.
    This is the fleet-scale pattern: run the DES head on a scaled-down
    calibration population (per-request demands don't depend on how
    many users submit), then sweep the million-user target trace with
    the calibrated model — the CLI ``hybrid`` command does exactly
    that for the 24 h diurnal day.
    """
    from repro.experiments.harness import run_scenario
    from repro.workloads.drivers import ClosedLoopDriver

    if des_window <= 0 or des_window > duration:
        raise ValueError(
            f"need 0 < des_window <= duration, got {des_window} "
            f"vs {duration}")
    driver = next((d for d in scenario.drivers
                   if isinstance(d, ClosedLoopDriver)), None)
    if driver is None:
        raise ValueError("hybrid mode needs a ClosedLoopDriver")
    think = driver.think_time.mean
    trace = fluid_trace if fluid_trace is not None else driver.trace

    des = run_scenario(scenario, duration=des_window)
    demands, visits = calibrate_from_application(
        scenario.app, scenario.request_type)
    model = build_fluid_model(scenario.app, scenario.request_type,
                              think, at_time=des_window,
                              demands=demands or None,
                              visits=visits or None)

    start = time.perf_counter()
    samples = int((duration - des_window) / interval) + 1
    times = des_window + np.arange(samples, dtype=float) * interval
    populations = np.fromiter((trace.users(t) for t in times),
                              dtype=float, count=samples)
    throughput = np.zeros(samples)
    response = np.zeros(samples)
    solutions: dict[int, MvaResult] = {}
    if samples and populations.min() <= EXACT_POPULATION_CUTOFF:
        # One exact pass seeds every sub-cutoff population (see
        # run_fluid).
        largest = int(min(populations.max(), EXACT_POPULATION_CUTOFF))
        solutions = dict(enumerate(solve_mva_all(
            model.stations, largest, model.think_time)))
    for i in range(samples):
        n = int(populations[i])
        solved = solutions.get(n)
        if solved is None:
            solved = solutions[n] = model.solve(n)
        throughput[i] = solved.throughput
        response[i] = solved.cycle_time
    fluid = FluidResult(request_type=scenario.request_type,
                        times=times, populations=populations,
                        throughput=throughput, response_times=response,
                        elapsed=time.perf_counter() - start)
    return HybridResult(des=des, fluid=fluid, model=model,
                        calibrated_demands=demands,
                        calibrated_visits=visits)
