"""Deterministic named random streams.

Every stochastic component in the simulator draws from its own named
stream so that (a) runs are reproducible from a single master seed and
(b) adding a new random consumer does not perturb the draws seen by
existing components (common random numbers across experiment variants).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stream_key(name: str) -> int:
    """A stable 64-bit integer derived from ``name`` (process-independent)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RandomStreams:
    """A factory of independent, reproducible random generators.

    Example::

        streams = RandomStreams(seed=42)
        arrivals = streams.stream("workload.arrivals")
        service = streams.stream("cart.demand")

    Two factories with the same seed hand out identical streams for
    identical names, regardless of creation order.
    """

    def __init__(self, seed: int = 0, prefix: str = "") -> None:
        self.seed = int(seed)
        self._prefix = prefix
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use."""
        full_name = self._prefix + name
        generator = self._streams.get(full_name)
        if generator is None:
            sequence = np.random.SeedSequence(
                [self.seed, _stream_key(full_name)])
            generator = np.random.default_rng(sequence)
            self._streams[full_name] = generator
        return generator

    def spawn(self, namespace: str) -> "RandomStreams":
        """A child factory whose stream names are prefixed by ``namespace``."""
        child = RandomStreams(self.seed, prefix=self._prefix + namespace + ".")
        child._streams = self._streams
        return child
