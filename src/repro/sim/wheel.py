"""Calendar-queue timer wheel: the indexed scheduler backend.

A binary heap pays ``O(log n)`` per insert and pop, which at fleet
scale (hundreds of thousands of pending think-timers) makes the
scheduler itself a first-order cost. The classic alternative is the
*calendar queue* (Brown 1988): hash each entry by timestamp into a
bucket of width ``w``, keep future buckets as cheap unsorted lists, and
only impose order on the one bucket the cursor is currently draining.
Inserts are then an ``O(1)`` list append for all but the active bucket,
and pops are a heap operation on a bucket holding a tiny slice of the
total pending set.

:class:`TimerWheel` stores the same ``(when, priority, eid, event)``
tuples the heap scheduler uses, and total order is always decided by
comparing those tuples — the wheel only *partitions* entries, it never
reorders them. That is what makes the wheel provably equivalent to the
heap: the bucket index is a monotone function of ``when`` (floored
division by the bucket width), so an entry in an earlier bucket can
never sort after an entry in a later one, and entries with equal
``when`` always share a bucket where the full tuple comparison decides.

Layout:

- ``slots`` circular buckets of ``width`` simulated seconds each cover
  the wheel's horizon. Future buckets are plain Python lists (append
  only); the bucket under the cursor is heapified once on activation
  and popped like a tiny heap.
- Entries landing at or before the cursor's bucket (same-time wakeups
  scheduled from callbacks) are pushed straight into the active
  bucket's heap, which degrades gracefully to plain-heap behavior.
- Entries beyond the horizon go to an overflow heap (``far``) and are
  pulled into buckets as the cursor advances. A wheel that goes idle
  in front of a distant timer jumps the cursor directly to it instead
  of sweeping empty buckets.

The wheel is not a drop-in ``heapq``: it assumes ``when`` never moves
backwards past the cursor, which the environment guarantees (events are
always scheduled at or after the current simulated time).
"""

from __future__ import annotations

import typing as _t
from heapq import heapify, heappop, heappush

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: A scheduled entry, identical to the heap scheduler's tuples.
Entry = _t.Tuple[float, int, int, "Event"]


class TimerWheel:
    """A calendar queue over ``(when, priority, eid, event)`` entries.

    Args:
        start: simulated time of the cursor at creation (bucket 0
            starts here; entries are never scheduled before it).
        width: bucket width in simulated seconds. The sweet spot is a
            few entries per bucket: width ~ horizon_of_interest /
            pending_entries. The default suits millisecond-scale
            service times with second-scale think times.
        slots: number of circular buckets; ``width * slots`` is the
            in-wheel horizon beyond which entries overflow to ``far``.
    """

    __slots__ = ("_width", "_nslots", "_slots", "_origin", "_base",
                 "_active", "_far", "_near", "_len")

    def __init__(self, start: float = 0.0, width: float = 0.001,
                 slots: int = 4096) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if slots < 2:
            raise ValueError(f"need at least 2 slots, got {slots}")
        self._width = float(width)
        self._nslots = int(slots)
        self._slots: list[list[Entry] | None] = [None] * self._nslots
        self._origin = float(start)
        self._base = 0                      # absolute index of the cursor
        self._active: list[Entry] = []      # heapified current bucket
        self._far: list[Entry] = []         # heap of beyond-horizon entries
        self._near = 0                      # entries in active + slots
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: Entry) -> None:
        """Insert one entry (O(1) for future buckets)."""
        idx = int((entry[0] - self._origin) / self._width)
        base = self._base
        if idx <= base:
            # At or behind the cursor: same-time wakeups from callbacks.
            # The active bucket is a heap, so order still holds.
            heappush(self._active, entry)
            self._near += 1
        elif idx - base < self._nslots:
            slot = idx % self._nslots
            bucket = self._slots[slot]
            if bucket is None:
                self._slots[slot] = [entry]
            else:
                bucket.append(entry)
            self._near += 1
        else:
            heappush(self._far, entry)
        self._len += 1

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty.

        May advance the cursor over empty buckets (harmless: no entry
        is dropped and no ordering decision is made)."""
        if not self._active and not self._advance():
            return float("inf")
        return self._active[0][0]

    def pop(self) -> Entry:
        """Remove and return the earliest entry.

        Raises:
            IndexError: when the wheel is empty.
        """
        if not self._active and not self._advance():
            raise IndexError("pop from an empty TimerWheel")
        self._near -= 1
        self._len -= 1
        return heappop(self._active)

    def _advance(self) -> bool:
        """Move the cursor to the next non-empty bucket.

        Returns whether an active (non-empty, heapified) bucket is now
        available."""
        if self._len == 0:
            return False
        width = self._width
        origin = self._origin
        nslots = self._nslots
        slots = self._slots
        far = self._far
        while True:
            if self._near == 0:
                if not far:
                    return False
                # Idle in front of a distant timer: jump the cursor to
                # its bucket instead of sweeping empty buckets.
                self._base = int((far[0][0] - origin) / width)
            else:
                self._base += 1
            # Pull overflow entries that now fall inside the horizon.
            # The admission test is the *same* monotone index function
            # used for placement — never a separately accumulated time
            # limit, whose float drift could admit an entry exactly one
            # horizon out and alias it onto the cursor's own slot.
            while far:
                idx = int((far[0][0] - origin) / width)
                if idx - self._base >= nslots:
                    break
                entry = heappop(far)
                if idx <= self._base:
                    heappush(self._active, entry)
                else:
                    slot = idx % nslots
                    bucket = slots[slot]
                    if bucket is None:
                        slots[slot] = [entry]
                    else:
                        bucket.append(entry)
                self._near += 1
            slot = self._base % nslots
            bucket = slots[slot]
            if bucket is not None:
                slots[slot] = None
                if self._active:
                    # Late same-time entries were pushed while this
                    # bucket was still pending; merge and re-heapify.
                    self._active.extend(bucket)
                    heapify(self._active)
                else:
                    heapify(bucket)
                    self._active = bucket
            if self._active:
                return True

    def __repr__(self) -> str:
        return (f"<TimerWheel len={self._len} width={self._width} "
                f"slots={self._nslots} base={self._base}>")
