"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    User code can raise it from within a process to stop the event loop;
    :meth:`Environment.run` catches it and returns normally.
    """


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class UnhandledProcessError(SimulationError):
    """A process crashed and no other process was waiting on it.

    The original exception is available as ``__cause__``.
    """


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    Attributes:
        cause: arbitrary value passed to ``interrupt()`` describing why.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"
