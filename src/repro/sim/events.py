"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic SimPy design: an :class:`Event` is a
one-shot container for a value (or an exception) plus a list of callbacks
that the :class:`~repro.sim.engine.Environment` invokes when the event is
processed. Processes (see :mod:`repro.sim.process`) are generators that
``yield`` events to wait for them.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

from repro.sim.errors import EventAlreadyTriggered

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Sentinel marking an event that has not yet been triggered.
PENDING: object = object()

Callback = _t.Callable[["Event"], None]


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called,
    which also schedules it onto the environment's event heap. When the
    environment pops it, the event is *processed*: all registered callbacks
    run exactly once and further callback registration is illegal.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to invoke on processing; ``None`` once processed.
        self.callbacks: _t.Optional[list[Callback]] = []
        self._value: object = PENDING
        self._ok: bool = True
        #: A failed event whose exception was delivered to at least one
        #: waiter is "defused" and will not crash the event loop.
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception when it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Equivalent to ``self.env.schedule(self)`` (delay 0, NORMAL
        # priority) with the method call and delay check elided — this
        # is the hottest scheduling site in the kernel.
        env = self.env
        heappush(env._heap, (env._now, 1, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._heap, (env._now, 1, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the state of ``event`` onto this event (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(_t.cast(BaseException, event._value))

    def add_callback(self, callback: Callback) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def remove_callback(self, callback: Callback) -> None:
        """Unregister a callback previously added (no-op if absent)."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class EventBatch:
    """A burst of already-triggered events scheduled as one heap entry.

    Created by :meth:`Environment.schedule_batch
    <repro.sim.engine.Environment.schedule_batch>` for homogeneous
    same-timestamp storms (CPU completion bursts, pool grant storms,
    request-batch bootstraps): ``k`` events ride one scheduler entry
    instead of ``k``, and the run loop applies their callbacks inline
    in order. The batch reserves ``k`` *consecutive* event serials, so
    the processed-event stream — what monitors and replay fingerprints
    observe — is byte-identical to pushing the members individually.
    """

    __slots__ = ("events",)

    def __init__(self, events: _t.Sequence[Event]) -> None:
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<EventBatch of {len(self.events)}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + env.schedule: the timeout-schedule-
        # fire cycle dominates most simulations, so the base-class
        # chain and the redundant second delay check are elided.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay
        heappush(env._heap, (env._now + delay, 1, next(env._eid), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """An event that triggers when a predicate over child events holds.

    Used through the :func:`all_of` / :func:`any_of` helpers. The condition
    fails as soon as any child fails.
    """

    __slots__ = ("_events", "_count", "_needed")

    def __init__(self, env: "Environment", events: _t.Sequence[Event],
                 needed: int) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._count = 0
        self._needed = min(needed, len(self._events))
        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")
        if self._needed == 0:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict[Event, object]:
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(_t.cast(BaseException, event._value))
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed(self._collect())


def all_of(env: "Environment", events: _t.Sequence[Event]) -> Condition:
    """An event that triggers once *all* ``events`` have succeeded."""
    return Condition(env, events, needed=len(events))


def any_of(env: "Environment", events: _t.Sequence[Event]) -> Condition:
    """An event that triggers once *any* of ``events`` has succeeded."""
    return Condition(env, events, needed=1 if events else 0)
