"""Kernel performance suite with a machine-readable report.

Times the simulator's hot paths — DES event loop, PS-CPU scheduler,
pool handoff, a full Sock Shop round trip — plus the parallel
experiment fan-out, and renders everything into one JSON document
(``BENCH_kernel.json``). The perf-regression smoke test compares these
numbers against a committed baseline; ``repro bench`` regenerates them.

Workloads mirror ``benchmarks/test_perf_kernel.py`` so the two views
(pytest-benchmark statistics there, throughput JSON here) describe the
same code paths. Every benchmark reports best-of-``repeats`` wall
clock: on shared machines the *minimum* is the least noisy estimator
of the true cost.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
import typing as _t
from heapq import heappush

import numpy as np

from repro.app.topologies import build_sock_shop
from repro.experiments.parallel import (
    default_workers,
    parallel_map,
    warm_pool,
)
from repro.resources import ProcessorSharingCpu, SoftResourcePool
from repro.sim import Environment, RandomStreams
from repro.sim.events import Event

#: Report schema tag (bump when the JSON layout changes).
SCHEMA = "repro-bench-kernel/1"

#: Default best-of count per benchmark.
REPEATS = 3


def _git_sha() -> str | None:
    """The working tree's commit SHA, or ``None`` outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def _best_of(fn: _t.Callable[[], _t.Any],
             repeats: int) -> tuple[float, _t.Any]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _events_scheduled(env: Environment) -> int:
    """Total events the environment scheduled (its id counter)."""
    return next(env._eid)


def bench_timeout_chain(n: int = 100_000,
                        repeats: int = REPEATS) -> dict:
    """Schedule+fire cost of a long timeout chain."""

    def run() -> int:
        env = Environment()

        def chain(env: Environment):
            for _ in range(n):
                yield env.timeout(0.001)

        env.process(chain(env))
        env.run()
        return _events_scheduled(env)

    seconds, events = _best_of(run, repeats)
    return {
        "n_timeouts": n,
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds,
    }


def bench_cpu_scheduler(jobs: int = 50_000,
                        repeats: int = REPEATS) -> dict:
    """Jobs through a contended PS CPU (virtual-time scheduler)."""

    def run() -> int:
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=4, overhead=0.01)

        def feeder(env: Environment):
            for _ in range(jobs):
                cpu.submit(0.002)
                yield env.timeout(0.0005)

        env.process(feeder(env))
        env.run()
        return _events_scheduled(env)

    seconds, events = _best_of(run, repeats)
    return {
        "jobs": jobs,
        "events": events,
        "seconds": seconds,
        "jobs_per_sec": jobs / seconds,
        "events_per_sec": events / seconds,
    }


def bench_pool_handoff(workers: int = 100, iterations: int = 200,
                       repeats: int = REPEATS) -> dict:
    """Acquire/release churn through a small pool with queueing."""

    def run() -> int:
        env = Environment()
        pool = SoftResourcePool(env, capacity=4)

        def worker(env: Environment):
            for _ in range(iterations):
                yield pool.acquire()
                yield env.timeout(0.001)
                pool.release()

        for _ in range(workers):
            env.process(worker(env))
        env.run()
        return pool.total_granted

    seconds, grants = _best_of(run, repeats)
    return {
        "grants": grants,
        "seconds": seconds,
        "grants_per_sec": grants / seconds,
    }


def bench_sock_shop(requests: int = 2000,
                    repeats: int = REPEATS) -> dict:
    """End-to-end cost of a Sock Shop cart round trip."""

    def run() -> tuple[int, int]:
        env = Environment()
        app = build_sock_shop(env, RandomStreams(1))

        def feeder(env: Environment):
            for _ in range(requests):
                app.submit("cart")
                yield env.timeout(0.004)

        env.process(feeder(env))
        env.run()
        return app.latency["cart"].total, _events_scheduled(env)

    seconds, (completed, events) = _best_of(run, repeats)
    return {
        "requests": completed,
        "events": events,
        "seconds": seconds,
        "requests_per_sec": completed / seconds,
        "events_per_sec": events / seconds,
    }


def bench_sampling_overhead(requests: int = 2000,
                            repeats: int = REPEATS) -> dict:
    """Events/s cost of tail sampling + streaming path aggregation.

    Runs the Sock Shop cart round trip three ways — bare warehouse,
    :class:`~repro.tracing.TailSampler` attached, and sampler plus
    :class:`~repro.tracing.CriticalPathAggregator` — and reports the
    relative events/s overhead of each. Sampling draws from the
    dedicated ``tracing.sampler`` stream, so all runs schedule the
    exact same simulation events; the deltas are pure observer cost.
    ``overhead_pct`` is the tail-sampling cost (the perf gate);
    ``analytics_overhead_pct`` adds the streaming aggregation.
    """
    from repro.tracing import (
        CriticalPathAggregator,
        TailSampler,
        sampler_stream,
    )

    def run(mode: str) -> tuple[int, int, int]:
        env = Environment()
        streams = RandomStreams(1)
        app = build_sock_shop(env, streams)
        if mode != "bare":
            app.warehouse.attach(
                sampler=TailSampler(0.1, sampler_stream(streams),
                                    slo_threshold=0.4),
                analytics=(CriticalPathAggregator()
                           if mode == "analytics" else None))

        def feeder(env: Environment):
            for _ in range(requests):
                app.submit("cart")
                yield env.timeout(0.004)

        env.process(feeder(env))
        env.run()
        return (app.warehouse.total_recorded, len(app.warehouse),
                _events_scheduled(env))

    base_s, (base_traces, _stored, base_events) = _best_of(
        lambda: run("bare"), repeats)
    tail_s, (tail_traces, stored, tail_events) = _best_of(
        lambda: run("tail"), repeats)
    full_s, (_traces, _stored2, full_events) = _best_of(
        lambda: run("analytics"), repeats)
    base_eps = base_events / base_s
    tail_eps = tail_events / tail_s
    full_eps = full_events / full_s
    return {
        "requests": requests,
        "events": base_events,
        "identical_events": base_events == tail_events == full_events,
        "traces": tail_traces,
        "traces_identical": base_traces == tail_traces,
        "stored_traces": stored,
        "stored_fraction": (stored / tail_traces if tail_traces
                            else 0.0),
        "baseline_seconds": base_s,
        "sampled_seconds": tail_s,
        "analytics_seconds": full_s,
        "baseline_events_per_sec": base_eps,
        "sampled_events_per_sec": tail_eps,
        "analytics_events_per_sec": full_eps,
        "overhead_pct": (base_eps - tail_eps) / base_eps * 100.0,
        "analytics_overhead_pct":
            (base_eps - full_eps) / base_eps * 100.0,
    }


def bench_service_selftrace(series: int = 1000, rounds: int = 8,
                            snapshots_per_round: int = 6,
                            repeats: int = REPEATS) -> dict:
    """Flight-recorder cost on the service's recommendation path.

    Drives two :class:`~repro.service.ControlPlane` instances through
    the identical ingest → control-round sequence — ``series``
    monitored services, ``snapshots_per_round`` scrapes between
    rounds, every series estimated per round (``decide_top_k=0``) —
    once with self-tracing disabled (``flight_rounds=0``) and once
    recording full span trees. ``selftrace_overhead_pct`` is the
    relative wall-clock cost of the flight recorder (the perf gate
    holds it under 10%); ``identical_decisions`` asserts the disabled
    mode changes nothing but timing — decision bytes match exactly.
    """
    from repro.core.scg import ScatterModelConfig
    from repro.service import (
        ControlPlane,
        ServiceConfig,
        render_snapshot,
    )

    # Pre-render every scrape so both runs parse identical bytes and
    # the generator cost stays out of the measurement loop's variance.
    batches: list[list[str]] = []
    clock = 0.0
    for round_index in range(rounds):
        batch: list[str] = []
        for scrape in range(snapshots_per_round):
            clock += 1.0
            step = round_index * snapshots_per_round + scrape
            concurrency = {f"svc{i:04d}": float(1 + (step + i) % 8)
                           for i in range(series)}
            goodput = {name: 40.0 * q / (1.0 + q / 6.0)
                       for name, q in concurrency.items()}
            utilization = {name: min(0.95, 0.30 + 0.08 * q)
                           for name, q in concurrency.items()}
            allocation = {name: 4 for name in concurrency}
            batch.append(render_snapshot(
                clock, utilization, concurrency, goodput, allocation))
        batches.append(batch)

    def run(flight_rounds: int) -> tuple[float, str, int]:
        cfg = ServiceConfig(
            decide_top_k=0, max_series=max(series, 1),
            flight_rounds=flight_rounds,
            scatter=ScatterModelConfig(min_samples=8, min_distinct=4,
                                       quantum=0.5))
        plane = ControlPlane(cfg)
        start = time.perf_counter()
        for batch in batches:
            for text in batch:
                plane.ingest_metrics(text)
            plane.tick()
        elapsed = time.perf_counter() - start
        return elapsed, plane.decisions_jsonl(), len(plane.flight)

    bare_s = traced_s = float("inf")
    bare_text = traced_text = ""
    recorded = 0
    for _ in range(max(1, repeats)):
        elapsed, text, _unused = run(0)
        if elapsed < bare_s:
            bare_s = elapsed
        bare_text = text
        elapsed, text, kept = run(256)
        if elapsed < traced_s:
            traced_s = elapsed
        traced_text = text
        recorded = kept
    return {
        "series": series,
        "rounds": rounds,
        "snapshots_per_round": snapshots_per_round,
        "decisions": len(traced_text.splitlines()),
        "identical_decisions": bare_text == traced_text,
        "rounds_recorded": recorded,
        "bare_seconds": bare_s,
        "traced_seconds": traced_s,
        "bare_rounds_per_sec": rounds / bare_s,
        "traced_rounds_per_sec": rounds / traced_s,
        "selftrace_overhead_pct":
            (traced_s - bare_s) / bare_s * 100.0,
    }


def fanout_goodput(spec: tuple[int, int]) -> float:
    """One fan-out task: a seeded Sock Shop run's goodput at 400 ms.

    Module-level so worker processes can import it; the (seed,
    requests) spec fully determines the result, which is what makes
    the parallel path bit-identical to the serial one.
    """
    seed, requests = spec
    env = Environment()
    app = build_sock_shop(env, RandomStreams(seed))

    def feeder(env: Environment):
        for _ in range(requests):
            app.submit("cart")
            yield env.timeout(0.004)

    env.process(feeder(env))
    env.run()
    _times, latencies = app.latency["cart"].window()
    if latencies.size == 0:
        return 0.0
    good = int((latencies <= 0.4).sum())
    return good / (requests * 0.004)


def trace_run_digest(spec: tuple[str, float, int]) -> str:
    """Event-stream digest of one (trace, duration, seed) scenario run.

    Module-level fan-out task used by the determinism tests: a full
    Sock Shop cart scenario under the named workload trace with the
    Sora controller, fingerprinted with the validation subsystem's
    :class:`~repro.validation.fingerprint.RunRecorder`. Identical
    digests from serial and parallel execution prove the fan-out is
    byte-exact.
    """
    from repro.experiments.harness import run_scenario
    from repro.experiments.scenarios import sock_shop_cart_scenario
    from repro.validation.fingerprint import (
        RunRecorder,
        fingerprint_traces,
    )
    from repro.workloads import build_trace

    trace_name, duration, seed = spec
    trace = build_trace(trace_name, duration=duration, peak_users=60,
                        min_users=20)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", seed=seed)
    recorder = RunRecorder(scenario.env, keep_events=False)
    run_scenario(scenario, duration=duration)
    fingerprint = recorder.finish(scenario.app, extra={
        "trace_digest": fingerprint_traces(
            scenario.app.warehouse.traces()),
    })
    return fingerprint.digest


def bench_parallel_fanout(grid_points: int = 6,
                          requests: int = 500,
                          max_workers: int | None = None) -> dict:
    """Serial vs parallel wall clock over independent simulations.

    Runs the same ``grid_points`` seeded Sock Shop simulations once
    serially and once through :func:`parallel_map`, checks the results
    are identical, and reports the wall-clock speedup. Worker count is
    resolved against the cores actually available: with ≥2 cores the
    pool runs ≥2 workers (pre-warmed so spawn cost is not billed to
    the parallel path); on a single-core host ``parallel_map`` degrades
    to the serial loop, ``workers`` reports 1, and ``speedup_gate`` is
    False — the CI speedup gate keys off that flag rather than
    pretending a 1-core box parallelized anything.
    """
    specs = [(seed, requests) for seed in range(1, grid_points + 1)]
    cores = os.cpu_count() or 1
    if max_workers is None:
        workers = min(default_workers(), grid_points)
        if cores >= 2:
            workers = max(2, workers)
    else:
        workers = max_workers
    # The number of workers the pool will actually use.
    workers = min(workers, grid_points)
    if cores < 2:
        workers = 1

    # Untimed warm-up: the first simulation of the process pays import
    # and allocator warm-up costs that would otherwise be billed to
    # whichever path runs first and fake a speedup on 1-core hosts.
    fanout_goodput(specs[0])

    started = time.perf_counter()
    serial = [fanout_goodput(spec) for spec in specs]
    serial_seconds = time.perf_counter() - started

    if workers > 1:
        warm_pool(workers)
    started = time.perf_counter()
    parallel = parallel_map(fanout_goodput, specs,
                            max_workers=workers)
    parallel_seconds = time.perf_counter() - started

    return {
        "grid_points": grid_points,
        "requests_per_point": requests,
        "workers": workers,
        "cores": cores,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "speedup_gate": workers >= 2,
        "identical_results": parallel == serial,
    }


def _timer_churn(scheduler: str, timers: int, budget: int) -> dict:
    """Self-rescheduling timer population at a fixed pending-set size.

    ``timers`` callback events each re-arm themselves with a
    deterministic pseudo-random gap in [0.5, 1.5) s until ``budget``
    re-arms have fired, so the scheduler holds ~``timers`` pending
    entries throughout — the regime where heap ``log n`` and wheel
    ``O(1)`` diverge. Pure callback events (no generators) keep the
    measurement on the scheduler itself rather than interpreter frame
    churn.
    """
    env = Environment(scheduler=scheduler)
    heap = env._heap
    eid = env._eid
    now_ref = env
    remaining = budget
    processed = 0

    def make(seed: int) -> Event:
        state = seed * 2654435761 % 2147483647 or 1

        def fire(event: Event) -> None:
            nonlocal remaining, processed, state
            processed += 1
            if remaining <= 0:
                return
            remaining -= 1
            state = (state * 1103515245 + 12345) % 2147483648
            gap = 0.5 + (state % 4096) / 4096.0
            event.callbacks = [fire]
            heappush(heap, (now_ref._now + gap, 1, next(eid), event))

        event = Event(env)
        event._ok = True
        event._value = None
        event.callbacks = [fire]
        return event

    for k in range(timers):
        event = make(k + 1)
        gap = 0.5 + ((k * 40503) % 4096) / 4096.0
        heappush(heap, (gap, 1, next(eid), event))

    started = time.perf_counter()
    env.run()
    seconds = time.perf_counter() - started
    return {
        "scheduler": scheduler,
        "timers": timers,
        "events": processed,
        "seconds": seconds,
        "events_per_sec": processed / seconds,
    }


def _des_closed_loop(users: int, duration: float) -> dict:
    """Full-fidelity DES point: a fixed closed-loop population on Sock
    Shop (cart), exercising batch user step-up, PS CPUs and pools.

    Think time scales with the population (mean ``users / 200`` s) so
    the offered load stays ~200 req/s — the fleet regime, where most
    users are thinking and the kernel carries ``users`` pending timers
    while requests flow at a rate the topology can actually serve.
    Without that scaling a 10k-user population would bury the default
    Sock Shop and measure queue explosion, not kernel throughput.
    """
    from repro.sim.distributions import Exponential
    from repro.workloads.drivers import ClosedLoopDriver
    from repro.workloads.traces import WorkloadTrace

    env = Environment()
    streams = RandomStreams(97)
    app = build_sock_shop(env, streams)
    trace = WorkloadTrace("flat", duration, users, users,
                          lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("driver"),
                              think_time=Exponential(
                                  mean=max(1.0, users / 200.0)))
    driver.start()
    started = time.perf_counter()
    env.run(until=duration)
    seconds = time.perf_counter() - started
    events = _events_scheduled(env)
    completed = app.latency["cart"].total
    return {
        "users": users,
        "sim_duration": duration,
        "requests": completed,
        "events": events,
        "seconds": seconds,
        "requests_per_sec": completed / seconds,
        "events_per_sec": events / seconds,
    }


def _fluid_diurnal(users: int) -> dict:
    """Hybrid fast path: a full 24 h diurnal day on Social Network at
    ``users`` peak population, solved analytically (repro.sim.fluid)."""
    from repro.app.topologies import build_social_network
    from repro.sim.fluid import run_fluid
    from repro.workloads.traces import diurnal

    env = Environment()
    app = build_social_network(env, RandomStreams(7))
    trace = diurnal(peak_users=users,
                    min_users=max(1, users // 20))
    started = time.perf_counter()
    result = run_fluid(app, "read_home_timeline", trace,
                       think_time=1.0, interval=60.0)
    seconds = time.perf_counter() - started
    return {
        "users": users,
        "trace_duration": trace.duration,
        "samples": int(len(result.times)),
        "seconds": seconds,
        "total_requests": result.total_requests,
        "peak_throughput": float(result.throughput.max()),
    }


def bench_scale_sweep(sizes: _t.Sequence[int] = (10_000, 100_000,
                                                 1_000_000),
                      des_users: int = 10_000,
                      des_duration: float = 5.0) -> dict:
    """The 10k→1M-user scaling story, in three tiers of fidelity.

    For each population size: the timer-churn microbenchmark comparing
    the heap and timer-wheel schedulers at that pending-set size (the
    isolated kernel effect), one full-fidelity closed-loop DES point at
    ``des_users`` (the largest size where per-user simulation is the
    right tool), and the fluid fast path sweeping a complete diurnal
    day at every size (how a million users actually gets run).
    """
    churn = []
    for timers in sizes:
        budget = min(1_000_000, max(timers, 100_000))
        churn.append({
            "timers": timers,
            "heap": _timer_churn("heap", timers, budget),
            "wheel": _timer_churn("wheel", timers, budget),
        })
        churn[-1]["wheel_speedup"] = (
            churn[-1]["heap"]["seconds"] /
            churn[-1]["wheel"]["seconds"])
    return {
        "sizes": list(sizes),
        "timer_churn": churn,
        "des_closed_loop": _des_closed_loop(des_users, des_duration),
        "fluid_diurnal": [_fluid_diurnal(n) for n in sizes],
    }


def run_bench_suite(scale: float = 1.0,
                    max_workers: int | None = None,
                    include_parallel: bool = True,
                    include_scale_sweep: bool = False,
                    repeats: int = REPEATS) -> dict:
    """Run every kernel benchmark; return the JSON-ready report.

    Args:
        scale: workload multiplier (smoke runs use < 1.0).
        max_workers: worker count for the fan-out benchmark.
        include_parallel: skip the fan-out benchmark when False.
        include_scale_sweep: add the 10k→1M scale sweep (sizes also
            follow ``scale``, so smoke runs stay cheap). Off by
            default — the perf-regression gate doesn't need it.
        repeats: best-of count per benchmark.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def scaled(n: int, floor: int = 1) -> int:
        return max(floor, int(n * scale))

    benchmarks = {
        "timeout_chain": bench_timeout_chain(
            n=scaled(100_000, 1000), repeats=repeats),
        "cpu_scheduler": bench_cpu_scheduler(
            jobs=scaled(50_000, 500), repeats=repeats),
        "pool_handoff": bench_pool_handoff(
            workers=scaled(100, 10), iterations=200, repeats=repeats),
        "sock_shop": bench_sock_shop(
            requests=scaled(2000, 50), repeats=repeats),
        "sampling_overhead": bench_sampling_overhead(
            requests=scaled(2000, 50), repeats=repeats),
        "service_selftrace": bench_service_selftrace(
            series=scaled(1000, 50), repeats=repeats),
    }
    if include_parallel:
        benchmarks["parallel_fanout"] = bench_parallel_fanout(
            grid_points=6, requests=scaled(500, 20),
            max_workers=max_workers)
    if include_scale_sweep:
        benchmarks["scale_sweep"] = bench_scale_sweep(
            sizes=tuple(scaled(n, 1000)
                        for n in (10_000, 100_000, 1_000_000)),
            des_users=scaled(10_000, 200),
            des_duration=max(1.0, 5.0 * min(1.0, scale * 10)))
    return {
        "schema": SCHEMA,
        "scale": scale,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "git_sha": _git_sha(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "benchmarks": benchmarks,
    }


def render_report(report: dict) -> str:
    """Human-readable one-line-per-benchmark summary."""
    lines = [f"kernel bench (scale={report['scale']:g}, "
             f"python {report['python']})"]
    for name, stats in report["benchmarks"].items():
        if name == "scale_sweep":
            for tier in stats["timer_churn"]:
                lines.append(
                    f"scale_sweep churn {tier['timers']:>9,} timers: "
                    f"wheel {tier['wheel']['events_per_sec']:>12,.0f} "
                    f"ev/s vs heap "
                    f"{tier['heap']['events_per_sec']:>12,.0f} ev/s "
                    f"({tier['wheel_speedup']:.2f}x)")
            des = stats["des_closed_loop"]
            lines.append(
                f"scale_sweep DES {des['users']:>11,} users: "
                f"{des['events_per_sec']:>12,.0f} ev/s "
                f"({des['requests']:,} requests)")
            for tier in stats["fluid_diurnal"]:
                lines.append(
                    f"scale_sweep fluid {tier['users']:>9,} users: "
                    f"24h day in {tier['seconds']:.2f} s "
                    f"({tier['total_requests']:,.0f} requests)")
            continue
        parts = [f"{name:<16}"]
        if "selftrace_overhead_pct" in stats:
            lines.append(
                f"{name:<16}  "
                f"{stats['traced_rounds_per_sec']:>8,.1f} rounds/s "
                f"self-traced vs "
                f"{stats['bare_rounds_per_sec']:>8,.1f} bare over "
                f"{stats['series']:,} series "
                f"({stats['selftrace_overhead_pct']:+.1f}% overhead, "
                f"identical decisions="
                f"{stats['identical_decisions']})")
            continue
        if "overhead_pct" in stats:
            lines.append(
                f"{name:<16}  "
                f"{stats['sampled_events_per_sec']:>12,.0f} events/s "
                f"tail-sampled vs "
                f"{stats['baseline_events_per_sec']:>12,.0f} bare "
                f"({stats['overhead_pct']:+.1f}% overhead, "
                f"{stats['analytics_overhead_pct']:+.1f}% with "
                f"aggregation, stored {stats['stored_fraction']:.0%} "
                f"of {stats['traces']:,} traces)")
            continue
        if "events_per_sec" in stats:
            parts.append(f"{stats['events_per_sec']:>12,.0f} events/s")
        if "requests_per_sec" in stats:
            parts.append(f"{stats['requests_per_sec']:>9,.0f} req/s")
        if "grants_per_sec" in stats:
            parts.append(f"{stats['grants_per_sec']:>9,.0f} grants/s")
        if "speedup" in stats:
            parts.append(
                f"speedup {stats['speedup']:.2f}x over "
                f"{stats['grid_points']} points "
                f"({stats['workers']} workers, identical="
                f"{stats['identical_results']})")
        if "seconds" in stats:
            parts.append(f"best {stats['seconds'] * 1000:8.1f} ms")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a bench report as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
