"""Kernel performance suite with a machine-readable report.

Times the simulator's hot paths — DES event loop, PS-CPU scheduler,
pool handoff, a full Sock Shop round trip — plus the parallel
experiment fan-out, and renders everything into one JSON document
(``BENCH_kernel.json``). The perf-regression smoke test compares these
numbers against a committed baseline; ``repro bench`` regenerates them.

Workloads mirror ``benchmarks/test_perf_kernel.py`` so the two views
(pytest-benchmark statistics there, throughput JSON here) describe the
same code paths. Every benchmark reports best-of-``repeats`` wall
clock: on shared machines the *minimum* is the least noisy estimator
of the true cost.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import time
import typing as _t

import numpy as np

from repro.app.topologies import build_sock_shop
from repro.experiments.parallel import default_workers, parallel_map
from repro.resources import ProcessorSharingCpu, SoftResourcePool
from repro.sim import Environment, RandomStreams

#: Report schema tag (bump when the JSON layout changes).
SCHEMA = "repro-bench-kernel/1"

#: Default best-of count per benchmark.
REPEATS = 3


def _git_sha() -> str | None:
    """The working tree's commit SHA, or ``None`` outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def _best_of(fn: _t.Callable[[], _t.Any],
             repeats: int) -> tuple[float, _t.Any]:
    """Run ``fn`` ``repeats`` times; return (best seconds, last value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _events_scheduled(env: Environment) -> int:
    """Total events the environment scheduled (its id counter)."""
    return next(env._eid)


def bench_timeout_chain(n: int = 100_000,
                        repeats: int = REPEATS) -> dict:
    """Schedule+fire cost of a long timeout chain."""

    def run() -> int:
        env = Environment()

        def chain(env: Environment):
            for _ in range(n):
                yield env.timeout(0.001)

        env.process(chain(env))
        env.run()
        return _events_scheduled(env)

    seconds, events = _best_of(run, repeats)
    return {
        "n_timeouts": n,
        "events": events,
        "seconds": seconds,
        "events_per_sec": events / seconds,
    }


def bench_cpu_scheduler(jobs: int = 50_000,
                        repeats: int = REPEATS) -> dict:
    """Jobs through a contended PS CPU (virtual-time scheduler)."""

    def run() -> int:
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=4, overhead=0.01)

        def feeder(env: Environment):
            for _ in range(jobs):
                cpu.submit(0.002)
                yield env.timeout(0.0005)

        env.process(feeder(env))
        env.run()
        return _events_scheduled(env)

    seconds, events = _best_of(run, repeats)
    return {
        "jobs": jobs,
        "events": events,
        "seconds": seconds,
        "jobs_per_sec": jobs / seconds,
        "events_per_sec": events / seconds,
    }


def bench_pool_handoff(workers: int = 100, iterations: int = 200,
                       repeats: int = REPEATS) -> dict:
    """Acquire/release churn through a small pool with queueing."""

    def run() -> int:
        env = Environment()
        pool = SoftResourcePool(env, capacity=4)

        def worker(env: Environment):
            for _ in range(iterations):
                yield pool.acquire()
                yield env.timeout(0.001)
                pool.release()

        for _ in range(workers):
            env.process(worker(env))
        env.run()
        return pool.total_granted

    seconds, grants = _best_of(run, repeats)
    return {
        "grants": grants,
        "seconds": seconds,
        "grants_per_sec": grants / seconds,
    }


def bench_sock_shop(requests: int = 2000,
                    repeats: int = REPEATS) -> dict:
    """End-to-end cost of a Sock Shop cart round trip."""

    def run() -> tuple[int, int]:
        env = Environment()
        app = build_sock_shop(env, RandomStreams(1))

        def feeder(env: Environment):
            for _ in range(requests):
                app.submit("cart")
                yield env.timeout(0.004)

        env.process(feeder(env))
        env.run()
        return app.latency["cart"].total, _events_scheduled(env)

    seconds, (completed, events) = _best_of(run, repeats)
    return {
        "requests": completed,
        "events": events,
        "seconds": seconds,
        "requests_per_sec": completed / seconds,
        "events_per_sec": events / seconds,
    }


def fanout_goodput(spec: tuple[int, int]) -> float:
    """One fan-out task: a seeded Sock Shop run's goodput at 400 ms.

    Module-level so worker processes can import it; the (seed,
    requests) spec fully determines the result, which is what makes
    the parallel path bit-identical to the serial one.
    """
    seed, requests = spec
    env = Environment()
    app = build_sock_shop(env, RandomStreams(seed))

    def feeder(env: Environment):
        for _ in range(requests):
            app.submit("cart")
            yield env.timeout(0.004)

    env.process(feeder(env))
    env.run()
    _times, latencies = app.latency["cart"].window()
    if latencies.size == 0:
        return 0.0
    good = int((latencies <= 0.4).sum())
    return good / (requests * 0.004)


def trace_run_digest(spec: tuple[str, float, int]) -> str:
    """Event-stream digest of one (trace, duration, seed) scenario run.

    Module-level fan-out task used by the determinism tests: a full
    Sock Shop cart scenario under the named workload trace with the
    Sora controller, fingerprinted with the validation subsystem's
    :class:`~repro.validation.fingerprint.RunRecorder`. Identical
    digests from serial and parallel execution prove the fan-out is
    byte-exact.
    """
    from repro.experiments.harness import run_scenario
    from repro.experiments.scenarios import sock_shop_cart_scenario
    from repro.validation.fingerprint import (
        RunRecorder,
        fingerprint_traces,
    )
    from repro.workloads import build_trace

    trace_name, duration, seed = spec
    trace = build_trace(trace_name, duration=duration, peak_users=60,
                        min_users=20)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", seed=seed)
    recorder = RunRecorder(scenario.env, keep_events=False)
    run_scenario(scenario, duration=duration)
    fingerprint = recorder.finish(scenario.app, extra={
        "trace_digest": fingerprint_traces(
            scenario.app.warehouse.traces()),
    })
    return fingerprint.digest


def bench_parallel_fanout(grid_points: int = 6,
                          requests: int = 500,
                          max_workers: int | None = None) -> dict:
    """Serial vs parallel wall clock over independent simulations.

    Runs the same ``grid_points`` seeded Sock Shop simulations once
    serially and once through :func:`parallel_map`, checks the results
    are identical, and reports the wall-clock speedup. On a single-CPU
    host the pool degrades to the serial loop (speedup ~1.0 by
    construction); the determinism check still exercises the worker
    machinery when ``max_workers`` forces a pool.
    """
    specs = [(seed, requests) for seed in range(1, grid_points + 1)]
    workers = (default_workers() if max_workers is None
               else max_workers)

    started = time.perf_counter()
    serial = [fanout_goodput(spec) for spec in specs]
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = parallel_map(fanout_goodput, specs,
                            max_workers=workers)
    parallel_seconds = time.perf_counter() - started

    return {
        "grid_points": grid_points,
        "requests_per_point": requests,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "identical_results": parallel == serial,
    }


def run_bench_suite(scale: float = 1.0,
                    max_workers: int | None = None,
                    include_parallel: bool = True,
                    repeats: int = REPEATS) -> dict:
    """Run every kernel benchmark; return the JSON-ready report.

    Args:
        scale: workload multiplier (smoke runs use < 1.0).
        max_workers: worker count for the fan-out benchmark.
        include_parallel: skip the fan-out benchmark when False.
        repeats: best-of count per benchmark.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def scaled(n: int, floor: int = 1) -> int:
        return max(floor, int(n * scale))

    benchmarks = {
        "timeout_chain": bench_timeout_chain(
            n=scaled(100_000, 1000), repeats=repeats),
        "cpu_scheduler": bench_cpu_scheduler(
            jobs=scaled(50_000, 500), repeats=repeats),
        "pool_handoff": bench_pool_handoff(
            workers=scaled(100, 10), iterations=200, repeats=repeats),
        "sock_shop": bench_sock_shop(
            requests=scaled(2000, 50), repeats=repeats),
    }
    if include_parallel:
        benchmarks["parallel_fanout"] = bench_parallel_fanout(
            grid_points=6, requests=scaled(500, 20),
            max_workers=max_workers)
    return {
        "schema": SCHEMA,
        "scale": scale,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "git_sha": _git_sha(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "benchmarks": benchmarks,
    }


def render_report(report: dict) -> str:
    """Human-readable one-line-per-benchmark summary."""
    lines = [f"kernel bench (scale={report['scale']:g}, "
             f"python {report['python']})"]
    for name, stats in report["benchmarks"].items():
        parts = [f"{name:<16}"]
        if "events_per_sec" in stats:
            parts.append(f"{stats['events_per_sec']:>12,.0f} events/s")
        if "requests_per_sec" in stats:
            parts.append(f"{stats['requests_per_sec']:>9,.0f} req/s")
        if "grants_per_sec" in stats:
            parts.append(f"{stats['grants_per_sec']:>9,.0f} grants/s")
        if "speedup" in stats:
            parts.append(
                f"speedup {stats['speedup']:.2f}x over "
                f"{stats['grid_points']} points "
                f"({stats['workers']} workers, identical="
                f"{stats['identical_results']})")
        if "seconds" in stats:
            parts.append(f"best {stats['seconds'] * 1000:8.1f} ms")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a bench report as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
