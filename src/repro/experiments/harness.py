"""Scenario harness: assemble, run, and summarize one experiment.

Every table and figure reproduction runs through this module: it wires
an application, a workload driver, optional autoscaler and concurrency
controller together, runs the simulation, and collects the time series
the paper plots (end-to-end response time, goodput, per-service CPU,
pool allocation/occupancy) plus summary statistics.
"""

from __future__ import annotations

import logging
import typing as _t
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs_mod
from repro.app.application import Application
from repro.autoscalers.base import Autoscaler, ScaleEvent
from repro.core.monitoring import MonitoringModule
from repro.core.sora import (
    AdaptationAction,
    ConcurrencyAdaptationFramework,
)
from repro.core.targets import SoftResourceTarget
from repro.metrics.sampler import IntervalSampler
from repro.metrics.summary import (
    LatencySummary,
    bucketed_percentile,
    bucketed_rate,
)
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

if _t.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults.injectors import FaultInjector
    from repro.obs.events import FaultRecord
    from repro.obs.slo import SLOMonitor, SLOSpec

logger = logging.getLogger(__name__)


@dataclass
class Scenario:
    """A fully assembled experiment, ready to run.

    Attributes:
        name: label for reports.
        env / streams: simulation kernel objects.
        app: the application under test.
        monitoring: the monitoring module (created if absent).
        drivers: workload drivers (objects with ``start()``).
        controller: concurrency adaptation framework (Sora/ConScale) or
            ``None`` for soft-resource-static baselines.
        autoscaler: hardware autoscaler or ``None``.
        target: primary adapted soft resource (series are recorded for
            it even when no controller is attached).
        request_type: the request class reported on.
        sla: the end-to-end SLA used for goodput reporting (seconds).
        extra_probes: additional ``name -> callable`` probes sampled
            once per second into the result.
        obs: observability scope for the run; defaults to the disabled
            :data:`repro.obs.NULL` so baselines pay no audit cost.
        faults: optional :class:`~repro.faults.injectors.FaultInjector`
            started just before the run; ``None`` (the default) keeps
            the run byte-identical to a fault-free build.
        slo: optional latency SLO to monitor during the run — an
            :class:`~repro.obs.slo.SLOSpec` (guarded with the default
            burn-rate rules) or a pre-configured
            :class:`~repro.obs.slo.SLOMonitor`. Requires an enabled
            ``obs``; the monitor lands on ``obs.slo`` and its alert
            transitions in the decision log.
    """

    name: str
    env: Environment
    streams: RandomStreams
    app: Application
    monitoring: MonitoringModule
    drivers: list
    request_type: str
    sla: float
    controller: ConcurrencyAdaptationFramework | None = None
    autoscaler: Autoscaler | None = None
    target: SoftResourceTarget | None = None
    extra_probes: dict[str, _t.Callable[[], float]] = field(
        default_factory=dict)
    obs: obs_mod.Observability = field(
        default_factory=lambda: obs_mod.NULL)
    faults: "FaultInjector | None" = None
    slo: "SLOSpec | SLOMonitor | None" = None


@dataclass
class ScenarioResult:
    """Everything the paper's figures/tables need from one run."""

    name: str
    request_type: str
    sla: float
    duration: float
    completion_times: np.ndarray
    response_times: np.ndarray
    samples: dict[str, tuple[np.ndarray, np.ndarray]]
    scale_events: list[ScaleEvent]
    adaptation_actions: list[AdaptationAction]
    total_submitted: int
    #: The run's observability scope (disabled NULL when the scenario
    #: did not opt in); carries the decision log and profiles.
    obs: "obs_mod.Observability" = field(
        default_factory=lambda: obs_mod.NULL)
    #: Requests abandoned after exhausting resilience policies.
    failed_total: int = 0
    #: Fault transitions the injector logged (empty without a plan).
    fault_events: "list[FaultRecord]" = field(default_factory=list)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def latency_summary(self) -> LatencySummary:
        """Distribution summary of end-to-end response times."""
        return LatencySummary.from_values(self.response_times)

    def percentile(self, q: float) -> float:
        """End-to-end latency percentile in seconds."""
        if self.response_times.size == 0:
            return 0.0
        return float(np.percentile(self.response_times, q))

    def goodput(self, threshold: float | None = None) -> float:
        """Mean goodput (req/s) under ``threshold`` (default: the SLA)."""
        threshold = self.sla if threshold is None else threshold
        good = int(np.count_nonzero(self.response_times <= threshold))
        return good / self.duration

    def throughput(self) -> float:
        """Mean completion rate over the run."""
        return self.response_times.size / self.duration

    # ------------------------------------------------------------------
    # Time series (figure panels)
    # ------------------------------------------------------------------
    def goodput_series(self, interval: float = 5.0,
                       threshold: float | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Goodput over time (panel (i) of Figs. 10-12)."""
        threshold = self.sla if threshold is None else threshold
        good = self.response_times <= threshold
        return bucketed_rate(self.completion_times, interval=interval,
                             since=0.0, until=self.duration,
                             predicate=good)

    def response_time_series(self, interval: float = 5.0, q: float = 95.0
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bucket latency percentile over time."""
        return bucketed_percentile(
            self.completion_times, self.response_times,
            interval=interval, since=0.0, until=self.duration, q=q)

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """A recorded probe series by name (see :func:`run_scenario`)."""
        try:
            return self.samples[name]
        except KeyError:
            raise KeyError(f"unknown series {name!r} "
                           f"(have: {sorted(self.samples)})") from None

    def summary_row(self) -> dict[str, float]:
        """A flat dict for table rendering."""
        latency = self.latency_summary().scaled(1000.0)
        return {
            "requests": float(latency.count),
            "throughput_rps": round(self.throughput(), 1),
            "goodput_rps": round(self.goodput(), 1),
            "p50_ms": round(latency.p50, 1),
            "p95_ms": round(latency.p95, 1),
            "p99_ms": round(latency.p99, 1),
        }


def _attach_slo(scenario: Scenario) -> "SLOMonitor | None":
    """Resolve ``scenario.slo`` into a monitor on ``scenario.obs``."""
    if scenario.slo is None:
        return None
    if not scenario.obs:
        raise ValueError(
            "Scenario.slo requires an enabled Observability (the SLO "
            "monitor emits AlertRecords into its decision log)")
    from repro.obs.slo import SLOMonitor
    monitor = scenario.slo
    if not isinstance(monitor, SLOMonitor):
        monitor = SLOMonitor(monitor)
    scenario.obs.slo = monitor
    return monitor


def _telemetry_pump(scenario: Scenario, slo: "SLOMonitor | None",
                    interval: float):
    """Streaming-telemetry process: one tick per ``interval``.

    Each tick drains the newly completed requests of the scenario's
    request type, folds their latencies into a P² sketch (so P50/P99
    series never retain raw samples), feeds the SLO monitor (counting
    abandoned requests as bad), evaluates burn-rate rules, and records
    the goodput / latency / pool / breaker / burn-rate series. The
    pump is a pure observer — it reads simulation state and writes
    only into ``scenario.obs`` — so enabling it never changes
    simulated outcomes; it is only *started* when telemetry is on, so
    default runs keep byte-identical replay fingerprints.
    """
    from repro.obs.sketch import QuantileSketch

    env = scenario.env
    obs = scenario.obs
    timeline = obs.timeline
    app = scenario.app
    sla = scenario.sla
    target = scenario.target
    sketch = QuantileSketch((0.5, 0.99))
    last_drained = 0.0
    last_failed = app.failed_total
    while True:
        yield env.timeout(interval)
        now = env.now
        log = app.latency.get(scenario.request_type)
        times, latencies = (log.window(last_drained, now)
                            if log is not None
                            else (np.empty(0), np.empty(0)))
        last_drained = now
        good = int(np.count_nonzero(latencies <= sla))
        timeline.record("goodput", now, good / interval)
        if latencies.size:
            sketch.observe_many(latencies)
            timeline.record("latency.p50", now, sketch.quantile(0.5))
            timeline.record("latency.p99", now, sketch.quantile(0.99))
        new_failures = app.failed_total - last_failed
        last_failed = app.failed_total
        if target is not None:
            timeline.record(f"pool.{target.name}.total", now,
                            float(target.total_allocation()))
        for service in app.services.values():
            for callee, state in service.breaker_states().items():
                level = {"closed": 0.0, "half-open": 0.5,
                         "open": 1.0}[state]
                timeline.record(
                    f"breaker.{service.name}->{callee}", now, level)
        if slo is not None:
            for when, latency in zip(times, latencies):
                slo.observe(float(when), float(latency))
            if new_failures:
                slo.observe_counts(now, 0, new_failures)
            slo.evaluate(now, obs.decisions if obs else None)
            for rule in slo.rules:
                timeline.record(
                    f"burn.{rule.name}", now,
                    slo.burn_rate(now, rule.long_window))
            timeline.record("slo.budget_remaining", now,
                            slo.budget_remaining(now))


def run_scenario(scenario: Scenario, duration: float,
                 probe_interval: float = 1.0,
                 drain: float = 2.0) -> ScenarioResult:
    """Run an assembled scenario and collect results.

    Args:
        scenario: the experiment to run.
        duration: simulated seconds of workload.
        probe_interval: sampling period for the recorded series.
        drain: extra simulated seconds allowed for in-flight requests.
    """
    env = scenario.env
    probes: dict[str, _t.Callable[[], float]] = {}
    target = scenario.target
    if target is not None:
        probes[f"{target.name}.allocation"] = \
            lambda: float(target.total_allocation())
        probes[f"{target.name}.in_use"] = \
            lambda: float(target.concurrency() *
                          max(1, target.service.replica_count))
        service = target.service
        probes[f"{service.name}.cores"] = \
            lambda: service.cores_per_replica * service.replica_count
        probes[f"{service.name}.replicas"] = \
            lambda: float(service.replica_count)
        probes[f"{service.name}.busy_cores"] = \
            lambda: scenario.monitoring.busy_cores_over(service.name, 1.0)
    probes.update(scenario.extra_probes)
    samplers = {
        name: IntervalSampler(env, probe, interval=probe_interval,
                              name=name)
        for name, probe in probes.items()
    }

    obs = scenario.obs
    slo = _attach_slo(scenario)
    if obs:
        obs.watch_engine(env)
        logger.info("running %s for %.0fs (observability on)",
                    scenario.name, duration)
        if scenario.monitoring.obs is None:
            # Stream per-service utilization into the run's timeline.
            scenario.monitoring.obs = obs
        if obs.timeline or slo is not None:
            env.process(_telemetry_pump(scenario, slo,
                                        interval=probe_interval),
                        name="telemetry-pump")
    if scenario.controller is not None:
        scenario.controller.start()
    else:
        scenario.monitoring.start()
        if scenario.autoscaler is not None:
            scenario.autoscaler.start()
    for sampler in samplers.values():
        sampler.start()
    for driver in scenario.drivers:
        driver.start()
    if scenario.faults is not None:
        scenario.faults.start()
    with obs.phase("run"):
        env.run(until=duration + drain)
    if obs:
        obs.unwatch_engine()

    times, latencies = scenario.app.latency[
        scenario.request_type].window(0.0, duration + drain)
    return ScenarioResult(
        name=scenario.name,
        request_type=scenario.request_type,
        sla=scenario.sla,
        duration=duration,
        completion_times=times,
        response_times=latencies,
        samples={name: sampler.series.window()
                 for name, sampler in samplers.items()},
        scale_events=(list(scenario.autoscaler.scale_log)
                      if scenario.autoscaler else []),
        adaptation_actions=(list(scenario.controller.actions)
                            if scenario.controller else []),
        total_submitted=scenario.app.total_submitted,
        obs=obs,
        failed_total=scenario.app.failed_total,
        fault_events=(list(scenario.faults.log)
                      if scenario.faults is not None else []),
    )
