"""Parallel experiment fan-out.

The evaluation is embarrassingly parallel at the granularity of one
simulation: sweep grid points, the six workload traces, controller
cells, and MAPE replications are all independent runs that only share
*code*, never simulator state. This module distributes such run lists
over a pool of **spawned** worker processes (matching
``repro.validation.replay``: a cold interpreter per worker, so no
inherited globals can leak between runs).

Determinism is preserved by construction: every task builds its own
:class:`~repro.sim.engine.Environment` and seeds its own named
:class:`~repro.sim.rng.RandomStreams` from the task spec, so a worker
process produces bit-for-bit the result the serial loop would —
``parallel_map(fn, items)`` is an order-preserving drop-in for
``[fn(item) for item in items]``. The determinism tests in
``tests/test_experiments_parallel.py`` enforce exactly that, reusing
the replay fingerprints.

Because workers are separate processes, ``fn`` must be a **module-level
function** and each item (and each result) must be picklable. Closures
and lambdas fall back to the serial path only when parallelism is
disabled; with workers they raise a pickling error, which is the
desired loud failure.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import typing as _t

Item = _t.TypeVar("Item")
Result = _t.TypeVar("Result")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"


def default_workers() -> int:
    """Worker-pool size: ``REPRO_PARALLEL_WORKERS`` or the CPU count."""
    override = os.environ.get(WORKERS_ENV)
    if override:
        workers = int(override)
        if workers < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


def parallel_map(fn: _t.Callable[[Item], Result],
                 items: _t.Iterable[Item], *,
                 max_workers: int | None = None) -> list[Result]:
    """``[fn(item) for item in items]`` over a spawned process pool.

    Results come back in input order regardless of completion order.
    Falls back to the plain serial loop when the resolved worker count
    is 1 or there are fewer than two items — the output is identical
    either way, so callers never need to branch.

    Args:
        fn: a picklable (module-level) function of one item.
        items: the independent task specs (picklable).
        max_workers: pool size; default :func:`default_workers`.
    """
    items = list(items)
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {workers}")
    workers = min(workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    context = multiprocessing.get_context("spawn")
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, items))


def parallel_starmap(fn: _t.Callable[..., Result],
                     items: _t.Iterable[tuple], *,
                     max_workers: int | None = None) -> list[Result]:
    """:func:`parallel_map` with argument-tuple unpacking."""
    return parallel_map(_Star(fn), list(items), max_workers=max_workers)


class _Star:
    """Picklable ``fn(*args)`` adapter (a lambda would not pickle)."""

    __slots__ = ("fn",)

    def __init__(self, fn: _t.Callable[..., Result]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> Result:
        return self.fn(*args)
