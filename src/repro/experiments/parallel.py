"""Parallel experiment fan-out.

The evaluation is embarrassingly parallel at the granularity of one
simulation: sweep grid points, the six workload traces, controller
cells, and MAPE replications are all independent runs that only share
*code*, never simulator state. This module distributes such run lists
over a pool of **spawned** worker processes (matching
``repro.validation.replay``: a cold interpreter per worker, so no
inherited globals can leak between runs).

Determinism is preserved by construction: every task builds its own
:class:`~repro.sim.engine.Environment` and seeds its own named
:class:`~repro.sim.rng.RandomStreams` from the task spec, so a worker
process produces bit-for-bit the result the serial loop would —
``parallel_map(fn, items)`` is an order-preserving drop-in for
``[fn(item) for item in items]``. The determinism tests in
``tests/test_experiments_parallel.py`` enforce exactly that, reusing
the replay fingerprints.

Because workers are separate processes, ``fn`` must be a **module-level
function** and each item (and each result) must be picklable. Closures
and lambdas fall back to the serial path only when parallelism is
disabled; with workers they raise a pickling error, which is the
desired loud failure.

Spawned workers cost a cold interpreter each (~0.1 s plus imports), so
the pool is created once per process and **reused** across
:func:`parallel_map` calls rather than torn down per call — a sweep of
many small grids amortizes one spawn instead of paying it per grid.
The pool grows on demand (a call wanting more workers replaces it) and
is replaced transparently if a worker dies mid-call
(``BrokenProcessPool``); :func:`shutdown_pool` retires it explicitly,
and an ``atexit`` hook cleans up at interpreter exit. Reuse does not
affect results: workers hold no task state between items (every task
builds its own environment from its spec), so a warm pool returns
byte-identical output to a cold one — the determinism tests run the
same grid through both and compare fingerprints.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
import os
import typing as _t
from concurrent.futures.process import BrokenProcessPool

Item = _t.TypeVar("Item")
Result = _t.TypeVar("Result")

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"

#: Target tasks per worker per chunk: chunking batches pickling round
#: trips for small items while keeping enough chunks in flight to
#: balance uneven task durations.
_CHUNK_TASKS_PER_WORKER = 4

_pool: concurrent.futures.ProcessPoolExecutor | None = None
_pool_workers = 0


def _acquire_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The shared executor, (re)created if absent or too small."""
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        context = multiprocessing.get_context("spawn")
        _pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context)
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Retire the shared worker pool (it respawns on next use)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def warm_pool(workers: int | None = None) -> int:
    """Pre-spawn the pool so later calls pay no cold-start; returns the
    pool size. Benchmarks call this before timing the parallel path."""
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return 1
    pool = _acquire_pool(workers)
    # One trivial round trip per worker forces the spawns to finish.
    list(pool.map(_identity, range(workers)))
    return workers


def _identity(x: int) -> int:
    return x


def default_workers() -> int:
    """Worker-pool size: ``REPRO_PARALLEL_WORKERS`` or the CPU count."""
    override = os.environ.get(WORKERS_ENV)
    if override:
        workers = int(override)
        if workers < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


def parallel_map(fn: _t.Callable[[Item], Result],
                 items: _t.Iterable[Item], *,
                 max_workers: int | None = None) -> list[Result]:
    """``[fn(item) for item in items]`` over a spawned process pool.

    Results come back in input order regardless of completion order.
    Falls back to the plain serial loop when the resolved worker count
    is 1 or there are fewer than two items — the output is identical
    either way, so callers never need to branch.

    The pool persists between calls (see the module docstring); small
    grids are additionally chunked so a sweep of tiny tasks pays one
    pickling round trip per chunk, not per item.

    Args:
        fn: a picklable (module-level) function of one item.
        items: the independent task specs (picklable).
        max_workers: pool size; default :func:`default_workers`.
    """
    items = list(items)
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {workers}")
    workers = min(workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) //
                    (workers * _CHUNK_TASKS_PER_WORKER))
    try:
        pool = _acquire_pool(workers)
        return list(pool.map(fn, items, chunksize=chunksize))
    except BrokenProcessPool:
        # A worker died (OOM-kill, hard crash). Replace the pool and
        # retry once from scratch; tasks are stateless so a clean rerun
        # is safe. A second break is a real failure and propagates.
        shutdown_pool()
        pool = _acquire_pool(workers)
        return list(pool.map(fn, items, chunksize=chunksize))


def parallel_starmap(fn: _t.Callable[..., Result],
                     items: _t.Iterable[tuple], *,
                     max_workers: int | None = None) -> list[Result]:
    """:func:`parallel_map` with argument-tuple unpacking."""
    return parallel_map(_Star(fn), list(items), max_workers=max_workers)


class _Star:
    """Picklable ``fn(*args)`` adapter (a lambda would not pickle)."""

    __slots__ = ("fn",)

    def __init__(self, fn: _t.Callable[..., Result]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> Result:
        return self.fn(*args)
