"""Experiment harness: scenarios, runner, and text reporting."""

from repro.experiments.harness import Scenario, ScenarioResult, run_scenario
from repro.experiments.reporting import (
    ascii_table,
    ratio,
    series_table,
    sparkline,
)
from repro.experiments.persistence import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.experiments.parallel import (
    default_workers,
    parallel_map,
    parallel_starmap,
)
from repro.experiments.bench import run_bench_suite
from repro.experiments.sweep import SweepResult, sweep
from repro.experiments.scenarios import (
    social_network_drift_scenario,
    sock_shop_cart_scenario,
    sock_shop_catalogue_scenario,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "SweepResult",
    "ascii_table",
    "default_workers",
    "load_result",
    "parallel_map",
    "parallel_starmap",
    "ratio",
    "run_bench_suite",
    "result_from_dict",
    "result_to_dict",
    "run_scenario",
    "save_result",
    "series_table",
    "social_network_drift_scenario",
    "sock_shop_cart_scenario",
    "sock_shop_catalogue_scenario",
    "sparkline",
    "sweep",
]
