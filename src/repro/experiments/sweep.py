"""Parameter sweep utilities.

The evaluation repeatedly answers "what is the goodput-optimal value of
knob X under workload W?" (Fig. 3's panels, Fig. 9's validations,
Table 1's ground truths). :func:`sweep` factors that pattern out: run a
scenario factory across a grid, collect a metric, and report the
argmax with its margin over the runner-up.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

Value = _t.TypeVar("Value")


@dataclass(frozen=True)
class SweepResult(_t.Generic[Value]):
    """Outcome of a one-dimensional sweep.

    Attributes:
        metric_by_value: metric measured at each grid point.
        best: the argmax grid point.
        margin: best metric divided by the runner-up's (1.0 = tie).
    """

    metric_by_value: dict[Value, float]
    best: Value
    margin: float

    @property
    def is_tie(self) -> bool:
        """Whether the sweep failed to separate the grid (margin < 3%)."""
        return self.margin < 1.03

    def normalized(self) -> dict[Value, float]:
        """Metric scaled so the best point is 1.0."""
        peak = self.metric_by_value[self.best] or 1.0
        return {value: metric / peak
                for value, metric in self.metric_by_value.items()}


def sweep(grid: _t.Sequence[Value],
          measure: _t.Callable[[Value], float]) -> SweepResult[Value]:
    """Measure ``measure(value)`` at each grid point; find the best.

    ``measure`` should be a pure function of the grid value (build the
    scenario, run it, return goodput).
    """
    if not grid:
        raise ValueError("empty grid")
    metric_by_value = {value: float(measure(value)) for value in grid}
    ranked = sorted(metric_by_value, key=metric_by_value.get,
                    reverse=True)
    best = ranked[0]
    if len(ranked) > 1 and metric_by_value[ranked[1]] > 0:
        margin = metric_by_value[best] / metric_by_value[ranked[1]]
    else:
        margin = float("inf") if metric_by_value[best] > 0 else 1.0
    return SweepResult(metric_by_value=metric_by_value, best=best,
                       margin=margin)
