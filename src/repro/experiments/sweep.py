"""Parameter sweep utilities.

The evaluation repeatedly answers "what is the goodput-optimal value of
knob X under workload W?" (Fig. 3's panels, Fig. 9's validations,
Table 1's ground truths). :func:`sweep` factors that pattern out: run a
scenario factory across a grid, collect a metric, and report the
argmax with its margin over the runner-up. Grid points are independent
simulations, so the sweep can optionally fan out over worker processes
(see :mod:`repro.experiments.parallel`); the result is identical to the
serial loop either way.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

Value = _t.TypeVar("Value")


@dataclass(frozen=True)
class SweepResult(_t.Generic[Value]):
    """Outcome of a one-dimensional sweep.

    Attributes:
        metric_by_value: metric measured at each grid point.
        best: the argmax grid point.
        margin: best metric divided by the runner-up's (1.0 = tie;
            ``inf`` when only the best point scored above zero).
    """

    metric_by_value: dict[Value, float]
    best: Value
    margin: float

    @property
    def is_tie(self) -> bool:
        """Whether the sweep failed to separate the grid (margin < 3%)."""
        return self.margin < 1.03

    @property
    def degenerate(self) -> bool:
        """Whether even the best grid point measured 0.0.

        A degenerate sweep carries no ranking information (every run
        produced nothing — wrong SLA, broken scenario, zero duration);
        callers should treat the argmax as meaningless.
        """
        return self.metric_by_value[self.best] == 0.0

    def normalized(self) -> dict[Value, float]:
        """Metric scaled so the best point is 1.0.

        A :attr:`degenerate` sweep returns all zeros rather than
        inventing a ranking: dividing by a fake peak of 1.0 would
        silently present "everything was zero" as "the best point hit
        its optimum".
        """
        peak = self.metric_by_value[self.best]
        if peak == 0.0:
            return {value: 0.0 for value in self.metric_by_value}
        return {value: metric / peak
                for value, metric in self.metric_by_value.items()}

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload.

        Grid points are stored as ``[value, metric]`` pairs (not dict
        keys) so integer/float grid values survive the round trip
        without string coercion; an infinite margin is stored as the
        string ``"inf"`` to stay strict-JSON clean.
        """
        return {
            "metric_by_value": [[value, metric] for value, metric
                                in self.metric_by_value.items()],
            "best": self.best,
            "margin": ("inf" if self.margin == float("inf")
                       else self.margin),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Rebuild a result from :meth:`to_dict` output."""
        margin = payload["margin"]
        return cls(
            metric_by_value={value: float(metric) for value, metric
                             in payload["metric_by_value"]},
            best=payload["best"],
            margin=float("inf") if margin == "inf" else float(margin),
        )


def sweep(grid: _t.Sequence[Value],
          measure: _t.Callable[[Value], float], *,
          parallel: bool = False,
          max_workers: int | None = None) -> SweepResult[Value]:
    """Measure ``measure(value)`` at each grid point; find the best.

    ``measure`` should be a pure function of the grid value (build the
    scenario, run it, return goodput). With ``parallel=True`` the grid
    points run in spawned worker processes — ``measure`` must then be a
    picklable module-level function — and the result is bit-identical
    to the serial sweep because each point seeds its own streams.

    Args:
        grid: the (non-empty) list of knob values to try.
        measure: metric function of one grid value.
        parallel: fan grid points out over worker processes.
        max_workers: pool size when parallel (default: CPU count, or
            ``REPRO_PARALLEL_WORKERS``).
    """
    if not grid:
        raise ValueError("empty grid")
    if parallel:
        from repro.experiments.parallel import parallel_map
        metrics = parallel_map(measure, grid, max_workers=max_workers)
        metric_by_value = {value: float(metric)
                           for value, metric in zip(grid, metrics)}
    else:
        metric_by_value = {value: float(measure(value))
                           for value in grid}
    ranked = sorted(metric_by_value, key=metric_by_value.get,
                    reverse=True)
    best = ranked[0]
    if len(ranked) > 1 and metric_by_value[ranked[1]] > 0:
        margin = metric_by_value[best] / metric_by_value[ranked[1]]
    else:
        # Runner-up at exactly 0: a positive best is infinitely ahead;
        # an all-zero grid separates nothing and reports a tie.
        margin = float("inf") if metric_by_value[best] > 0 else 1.0
    return SweepResult(metric_by_value=metric_by_value, best=best,
                       margin=margin)
