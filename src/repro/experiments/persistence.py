"""Persist scenario results to JSON for offline post-processing.

A :class:`~repro.experiments.harness.ScenarioResult` holds everything a
figure needs (latency log, probe series, action logs); saving it lets
plotting or statistics happen outside the simulation process — the
analogue of archiving a testbed run's metrics dump.
"""

from __future__ import annotations

import json
import typing as _t

import numpy as np

import repro.obs as obs_mod
from repro.autoscalers.base import ScaleEvent
from repro.core.sora import AdaptationAction
from repro.experiments.harness import ScenarioResult
from repro.obs.events import FaultRecord
from repro.obs.slo import SLOMonitor
from repro.obs.timeline import Timeline

FORMAT_VERSION = 1


def _telemetry_to_dict(obs: "obs_mod.Observability") -> dict | None:
    """Timeline + decision log + SLO state, when the run captured any.

    The payload is what ``repro obs dashboard``/``export`` need to
    render a persisted run without re-simulating it.
    """
    if not obs:
        return None
    payload: dict[str, _t.Any] = {}
    if obs.timeline and len(obs.timeline):
        payload["timeline"] = obs.timeline.to_dict()
    if len(obs.decisions):
        payload["decisions"] = [record.to_dict()
                                for record in obs.decisions]
    if obs.slo is not None:
        payload["slo"] = obs.slo.state_dict()
    metrics = obs.registry.snapshot()
    if metrics:
        payload["metrics"] = metrics
    return payload or None


def _telemetry_from_dict(payload: dict | None
                         ) -> "obs_mod.Observability":
    """Rebuild an enabled Observability scope from persisted telemetry.

    Only the persisted halves are restored (timeline, decision log,
    SLO state); profilers start empty and the metrics snapshot — being
    point-in-time summaries, not instruments — is kept on the returned
    scope as ``restored_metrics``.
    """
    if not payload:
        return obs_mod.NULL
    obs = obs_mod.Observability(enabled=True)
    timeline = payload.get("timeline")
    if timeline:
        obs.timeline = Timeline.from_dict(timeline)
    for record in payload.get("decisions", ()):
        obs.decisions.append(obs_mod.record_from_dict(record))
    slo = payload.get("slo")
    if slo:
        obs.slo = SLOMonitor.from_state_dict(slo)
    obs.restored_metrics = dict(payload.get("metrics", {}))
    return obs


def result_to_dict(result: ScenarioResult) -> dict:
    """A JSON-serializable dict capturing the full result."""
    telemetry = _telemetry_to_dict(result.obs)
    extra = {"telemetry": telemetry} if telemetry else {}
    return {
        **extra,
        "version": FORMAT_VERSION,
        "name": result.name,
        "request_type": result.request_type,
        "sla": result.sla,
        "duration": result.duration,
        "total_submitted": result.total_submitted,
        "completion_times": result.completion_times.tolist(),
        "response_times": result.response_times.tolist(),
        "samples": {
            name: {"times": times.tolist(), "values": values.tolist()}
            for name, (times, values) in result.samples.items()
        },
        "scale_events": [
            {"time": e.time, "service": e.service, "kind": e.kind,
             "before": e.before, "after": e.after}
            for e in result.scale_events
        ],
        "adaptation_actions": [
            {"time": a.time, "target": a.target, "before": a.before,
             "after": a.after, "method": a.method, "trigger": a.trigger,
             "threshold": a.threshold}
            for a in result.adaptation_actions
        ],
        "failed_total": result.failed_total,
        "fault_events": [r.to_dict() for r in result.fault_events],
    }


def result_from_dict(payload: dict) -> ScenarioResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    return ScenarioResult(
        name=payload["name"],
        request_type=payload["request_type"],
        sla=payload["sla"],
        duration=payload["duration"],
        completion_times=np.asarray(payload["completion_times"]),
        response_times=np.asarray(payload["response_times"]),
        samples={
            name: (np.asarray(series["times"]),
                   np.asarray(series["values"]))
            for name, series in payload["samples"].items()
        },
        scale_events=[
            ScaleEvent(time=e["time"], service=e["service"],
                       kind=e["kind"], before=e["before"],
                       after=e["after"])
            for e in payload["scale_events"]
        ],
        adaptation_actions=[
            AdaptationAction(time=a["time"], target=a["target"],
                             before=a["before"], after=a["after"],
                             method=a["method"], trigger=a["trigger"],
                             threshold=a["threshold"])
            for a in payload["adaptation_actions"]
        ],
        total_submitted=payload["total_submitted"],
        obs=_telemetry_from_dict(payload.get("telemetry")),
        failed_total=payload.get("failed_total", 0),
        fault_events=[FaultRecord.from_dict(r)
                      for r in payload.get("fault_events", [])],
    )


def save_result(path: str, result: ScenarioResult) -> None:
    """Write a result to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle)


def load_result(path: str) -> ScenarioResult:
    """Read a result previously written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))
