"""Persist scenario results to JSON for offline post-processing.

A :class:`~repro.experiments.harness.ScenarioResult` holds everything a
figure needs (latency log, probe series, action logs); saving it lets
plotting or statistics happen outside the simulation process — the
analogue of archiving a testbed run's metrics dump.
"""

from __future__ import annotations

import json
import typing as _t

import numpy as np

from repro.autoscalers.base import ScaleEvent
from repro.core.sora import AdaptationAction
from repro.experiments.harness import ScenarioResult
from repro.obs.events import FaultRecord

FORMAT_VERSION = 1


def result_to_dict(result: ScenarioResult) -> dict:
    """A JSON-serializable dict capturing the full result."""
    return {
        "version": FORMAT_VERSION,
        "name": result.name,
        "request_type": result.request_type,
        "sla": result.sla,
        "duration": result.duration,
        "total_submitted": result.total_submitted,
        "completion_times": result.completion_times.tolist(),
        "response_times": result.response_times.tolist(),
        "samples": {
            name: {"times": times.tolist(), "values": values.tolist()}
            for name, (times, values) in result.samples.items()
        },
        "scale_events": [
            {"time": e.time, "service": e.service, "kind": e.kind,
             "before": e.before, "after": e.after}
            for e in result.scale_events
        ],
        "adaptation_actions": [
            {"time": a.time, "target": a.target, "before": a.before,
             "after": a.after, "method": a.method, "trigger": a.trigger,
             "threshold": a.threshold}
            for a in result.adaptation_actions
        ],
        "failed_total": result.failed_total,
        "fault_events": [r.to_dict() for r in result.fault_events],
    }


def result_from_dict(payload: dict) -> ScenarioResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    return ScenarioResult(
        name=payload["name"],
        request_type=payload["request_type"],
        sla=payload["sla"],
        duration=payload["duration"],
        completion_times=np.asarray(payload["completion_times"]),
        response_times=np.asarray(payload["response_times"]),
        samples={
            name: (np.asarray(series["times"]),
                   np.asarray(series["values"]))
            for name, series in payload["samples"].items()
        },
        scale_events=[
            ScaleEvent(time=e["time"], service=e["service"],
                       kind=e["kind"], before=e["before"],
                       after=e["after"])
            for e in payload["scale_events"]
        ],
        adaptation_actions=[
            AdaptationAction(time=a["time"], target=a["target"],
                             before=a["before"], after=a["after"],
                             method=a["method"], trigger=a["trigger"],
                             threshold=a["threshold"])
            for a in payload["adaptation_actions"]
        ],
        total_submitted=payload["total_submitted"],
        failed_total=payload.get("failed_total", 0),
        fault_events=[FaultRecord.from_dict(r)
                      for r in payload.get("fault_events", [])],
    )


def save_result(path: str, result: ScenarioResult) -> None:
    """Write a result to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle)


def load_result(path: str) -> ScenarioResult:
    """Read a result previously written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))
