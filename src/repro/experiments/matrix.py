"""Matrix runner: topology × workload × fault × controller grids.

One :class:`CellSpec` names a fully-determined experiment — a zoo
archetype (:mod:`repro.scenarios.zoo`), a workload shape, a fault plan
kind, and a controller/autoscaler pairing — and :func:`run_cell` runs
it with a replay fingerprint armed, so every cell is independently
reproducible byte-for-byte. :func:`run_matrix` drives a grid of cells
(serially or over the PR-2 process pool), persists each cell's full
:class:`~repro.experiments.harness.ScenarioResult` as JSON, and writes
a queryable ``index.json`` plus a human ``index.html`` into the
results directory.

Cells are picklable by construction (specs are plain dataclasses of
primitives), which is what lets the grid fan out over spawned worker
processes with results identical to the serial loop.
"""

from __future__ import annotations

import html as _html
import json
import os
import typing as _t
from dataclasses import dataclass, field, fields

import repro.obs as obs_mod
from repro.experiments.harness import run_scenario
from repro.experiments.persistence import save_result
from repro.experiments.reporting import ascii_table
from repro.scenarios.zoo import (
    ZooParams,
    zoo_fault_plan,
    zoo_scenario,
)
from repro.validation.fingerprint import RunRecorder
from repro.workloads import WorkloadTrace, build_trace

FORMAT_VERSION = 1


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload shape with laptop-scale defaults."""

    trace: str
    duration: float = 120.0
    peak_users: int = 120
    min_users: int = 25

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}")
        if not 0 < self.min_users <= self.peak_users:
            raise ValueError(
                f"need 0 < min_users <= peak_users, got "
                f"{self.min_users}/{self.peak_users}")

    def build(self) -> WorkloadTrace:
        """Materialize the trace."""
        return build_trace(self.trace, duration=self.duration,
                           peak_users=self.peak_users,
                           min_users=self.min_users)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        return cls(**payload)


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined matrix cell.

    Attributes:
        params: the generated topology's parameters.
        workload: workload shape and scale.
        fault: zoo fault-plan kind (see
            :data:`repro.scenarios.zoo.ZOO_FAULT_KINDS`); the fault
            window covers the middle third of the run.
        controller / autoscaler: adaptation pairing.
        sla: end-to-end SLA for goodput accounting.
        seed: master seed for the cell's random streams.
        obs_enabled: capture a per-cell decision log (an enabled,
            telemetry-off :class:`~repro.obs.Observability`), persisted
            with the cell result.
        telemetry: additionally stream timeline telemetry and attach a
            tail sampler + critical-path aggregator, so persisted cells
            get a dashboard HTML and sampling-coverage stats next to
            the result JSON. Sampling draws from the dedicated
            ``tracing.sampler`` stream, so it never perturbs the
            simulated outcome; re-runs of the same spec still replay
            byte-identically.
    """

    params: ZooParams
    workload: WorkloadSpec
    fault: str = "none"
    controller: str = "none"
    autoscaler: str = "none"
    sla: float = 0.4
    seed: int = 42
    obs_enabled: bool = True
    telemetry: bool = False

    @property
    def cell_id(self) -> str:
        """Filesystem-safe unique identity within a matrix."""
        return (f"{self.params.archetype}-{self.workload.trace}"
                f"-{self.fault}-{self.controller}+{self.autoscaler}"
                f"-s{self.seed}")

    def to_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["params"] = self.params.to_dict()
        payload["workload"] = self.workload.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CellSpec":
        data = dict(payload)
        data["params"] = ZooParams.from_dict(data["params"])
        data["workload"] = WorkloadSpec.from_dict(data["workload"])
        return cls(**data)


@dataclass
class CellResult:
    """The queryable summary of one completed cell."""

    cell: CellSpec
    fingerprint: str
    requests: int
    submitted: int
    failed: int
    goodput_rps: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    adaptation_actions: int
    scale_events: int
    #: Path of the full persisted ScenarioResult, relative to the
    #: matrix results directory ("" when the cell was not persisted).
    path: str = ""
    #: Fingerprint of the verification re-run ("" when not checked).
    rerun_fingerprint: str = ""
    #: Path of the per-cell dashboard HTML, relative to the matrix
    #: results directory ("" unless the cell ran with telemetry).
    dashboard: str = ""
    #: Sampling-coverage stats from the cell warehouse (empty unless
    #: the cell ran with telemetry).
    coverage: dict = field(default_factory=dict)

    @property
    def replay_ok(self) -> bool:
        """Whether the re-run reproduced the fingerprint (vacuously
        true when no re-run was requested)."""
        return (not self.rerun_fingerprint
                or self.rerun_fingerprint == self.fingerprint)

    def to_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["cell"] = self.cell.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CellResult":
        data = dict(payload)
        data["cell"] = CellSpec.from_dict(data["cell"])
        return cls(**data)

    def summary_row(self) -> dict:
        """A flat dict for the index table."""
        return {
            "cell": self.cell.cell_id,
            "requests": self.requests,
            "failed": self.failed,
            "goodput_rps": round(self.goodput_rps, 1),
            "p95_ms": round(self.p95_ms, 1),
            "p99_ms": round(self.p99_ms, 1),
            "actions": self.adaptation_actions,
            "fingerprint": self.fingerprint[:12],
        }


def run_cell(cell: CellSpec, out_dir: str | None = None) -> CellResult:
    """Run one cell with a replay fingerprint armed.

    A module-level function of picklable arguments, so matrix grids
    can fan out over :func:`repro.experiments.parallel.parallel_map`.
    When ``out_dir`` is given the full result JSON lands at
    ``<out_dir>/<cell_id>.json``.
    """
    fault_at = cell.workload.duration / 3.0
    plan = zoo_fault_plan(cell.params, cell.fault, at=fault_at,
                          duration=fault_at)
    obs = (obs_mod.Observability(enabled=True,
                                 telemetry=cell.telemetry)
           if cell.obs_enabled or cell.telemetry else obs_mod.NULL)
    scenario = zoo_scenario(
        cell.params, trace=cell.workload.build(), sla=cell.sla,
        controller=cell.controller, autoscaler=cell.autoscaler,
        seed=cell.seed, obs=obs, fault_plan=plan,
        name=cell.cell_id)
    if cell.telemetry:
        from repro.tracing import (
            CriticalPathAggregator,
            TailSampler,
            sampler_stream,
        )

        scenario.app.warehouse.attach(
            sampler=TailSampler(0.1, sampler_stream(scenario.streams),
                                slo_threshold=cell.sla),
            analytics=CriticalPathAggregator())
        obs.attach_trace_analytics(scenario.app.warehouse)
    recorder = RunRecorder(scenario.env, keep_events=False)
    result = run_scenario(scenario, duration=cell.workload.duration)
    fingerprint = recorder.finish(scenario.app)
    path = ""
    dashboard = ""
    coverage: dict = {}
    if cell.telemetry:
        coverage = scenario.app.warehouse.coverage()
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{cell.cell_id}.json")
        save_result(path, result)
        path = os.path.relpath(path, os.path.dirname(out_dir))
        if cell.telemetry:
            dashboard = os.path.join(out_dir,
                                     f"{cell.cell_id}.dashboard.html")
            with open(dashboard, "w", encoding="utf-8") as handle:
                handle.write(obs_mod.render_dashboard_html(
                    obs, title=cell.cell_id))
            with open(os.path.join(out_dir,
                                   f"{cell.cell_id}.coverage.json"),
                      "w", encoding="utf-8") as handle:
                json.dump(coverage, handle, indent=2, sort_keys=True)
            dashboard = os.path.relpath(dashboard,
                                        os.path.dirname(out_dir))
    summary = result.summary_row()
    return CellResult(
        cell=cell,
        fingerprint=fingerprint.digest,
        requests=int(summary["requests"]),
        submitted=result.total_submitted,
        failed=result.failed_total,
        goodput_rps=summary["goodput_rps"],
        throughput_rps=summary["throughput_rps"],
        p50_ms=summary["p50_ms"],
        p95_ms=summary["p95_ms"],
        p99_ms=summary["p99_ms"],
        adaptation_actions=len(result.adaptation_actions),
        scale_events=len(result.scale_events),
        path=path,
        dashboard=dashboard,
        coverage=coverage,
    )


def _rerun_fingerprint(cell: CellSpec) -> str:
    """Fingerprint of a fresh, non-persisting run of ``cell``."""
    return run_cell(cell, out_dir=None).fingerprint


@dataclass
class MatrixResult:
    """All cell results of one matrix run, with persistence."""

    cells: list[CellResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def replay_failures(self) -> list[str]:
        """Cell ids whose verification re-run diverged."""
        return [r.cell.cell_id for r in self.cells if not r.replay_ok]

    def to_dict(self) -> dict:
        return {"version": FORMAT_VERSION,
                "cells": [r.to_dict() for r in self.cells]}

    @classmethod
    def from_dict(cls, payload: dict) -> "MatrixResult":
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported matrix format version {version!r}")
        return cls(cells=[CellResult.from_dict(r)
                          for r in payload["cells"]])

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "MatrixResult":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def summary_table(self) -> str:
        """A text table of all cells (sorted by cell id)."""
        rows = [r.summary_row()
                for r in sorted(self.cells,
                                key=lambda r: r.cell.cell_id)]
        if not rows:
            return "(empty matrix)"
        return ascii_table(list(rows[0]), [list(row.values())
                                           for row in rows])

    def to_html_index(self) -> str:
        """A self-contained HTML index of the matrix."""
        rows = sorted(self.cells, key=lambda r: r.cell.cell_id)
        head = ("cell", "requests", "failed", "goodput rps", "p95 ms",
                "p99 ms", "actions", "fingerprint", "result",
                "dashboard")
        body = []
        for result in rows:
            summary = result.summary_row()
            link = (f'<a href="{_html.escape(result.path)}">json</a>'
                    if result.path else "—")
            stored = result.coverage.get("stored")
            total = result.coverage.get("total_recorded")
            dash_text = ("dashboard" if not total
                         else f"dashboard ({stored}/{total} traces)")
            dash = (f'<a href="{_html.escape(result.dashboard)}">'
                    f"{dash_text}</a>"
                    if result.dashboard else "—")
            plain = [summary["cell"], summary["requests"],
                     summary["failed"], summary["goodput_rps"],
                     summary["p95_ms"], summary["p99_ms"],
                     summary["actions"], summary["fingerprint"]]
            cells = [_html.escape(str(value)) for value in plain]
            cells += [link, dash]
            body.append(
                "<tr>" + "".join(f"<td>{value}</td>"
                                 for value in cells) + "</tr>")
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>matrix results</title><style>"
            "body{font-family:monospace;margin:2em}"
            "table{border-collapse:collapse}"
            "td,th{border:1px solid #999;padding:4px 8px;"
            "text-align:right}th{background:#eee}"
            "td:first-child,th:first-child{text-align:left}"
            "</style></head><body>"
            f"<h1>matrix: {len(rows)} cells</h1><table><tr>"
            + "".join(f"<th>{h}</th>" for h in head) + "</tr>"
            + "".join(body) + "</table></body></html>")


def run_matrix(cells: _t.Sequence[CellSpec], out_dir: str, *,
               parallel: bool = False,
               max_workers: int | None = None,
               rerun_check: bool = False) -> MatrixResult:
    """Run every cell, persist results, and write the index.

    Args:
        cells: the grid (cell ids must be unique).
        out_dir: results directory; per-cell JSONs land in
            ``<out_dir>/cells/``, the index at ``<out_dir>/index.json``
            and ``<out_dir>/index.html``.
        parallel: fan cells out over spawned worker processes (results
            are bit-identical to the serial loop — each cell seeds its
            own streams).
        max_workers: process-pool size when parallel.
        rerun_check: run every cell a second time and record the
            re-run fingerprint, proving byte-identical replay
            (doubles the cost; see :attr:`MatrixResult.replay_failures`).
    """
    ids = [cell.cell_id for cell in cells]
    duplicates = {i for i in ids if ids.count(i) > 1}
    if duplicates:
        raise ValueError(f"duplicate cell ids {sorted(duplicates)}")
    cells_dir = os.path.join(out_dir, "cells")
    os.makedirs(cells_dir, exist_ok=True)
    if parallel:
        from functools import partial

        from repro.experiments.parallel import parallel_map
        results = parallel_map(partial(run_cell, out_dir=cells_dir),
                               list(cells), max_workers=max_workers)
        if rerun_check:
            reruns = parallel_map(_rerun_fingerprint, list(cells),
                                  max_workers=max_workers)
            for result, rerun in zip(results, reruns):
                result.rerun_fingerprint = rerun
    else:
        results = []
        for cell in cells:
            result = run_cell(cell, out_dir=cells_dir)
            if rerun_check:
                result.rerun_fingerprint = _rerun_fingerprint(cell)
            results.append(result)
    matrix = MatrixResult(cells=list(results))
    matrix.save(os.path.join(out_dir, "index.json"))
    with open(os.path.join(out_dir, "index.html"), "w",
              encoding="utf-8") as handle:
        handle.write(matrix.to_html_index())
    return matrix


def default_matrix(*, archetypes: _t.Sequence[str] = (
                       "fanout_slow_shard", "cache_aside",
                       "quorum_reads"),
                   traces: _t.Sequence[str] = ("slowly_varying",
                                               "big_spike"),
                   faults: _t.Sequence[str] = ("none", "interference"),
                   controllers: _t.Sequence[str] = ("none", "sora"),
                   autoscaler: str = "hpa",
                   duration: float = 90.0, peak_users: int = 100,
                   min_users: int = 25, seed: int = 42,
                   sla: float = 0.4,
                   telemetry: bool = False) -> list[CellSpec]:
    """The stock ≥24-cell grid (3 topologies × 2 × 2 × 2).

    Cache-aside cells get an invalidation storm aligned with the
    fault window, so shape drift and the injected fault compound.
    """
    cells = []
    for archetype in archetypes:
        storm_at = duration / 2.0 if archetype == "cache_aside" else None
        params = ZooParams(archetype=archetype, storm_at=storm_at,
                           storm_duration=duration / 6.0)
        for trace in traces:
            workload = WorkloadSpec(trace=trace, duration=duration,
                                    peak_users=peak_users,
                                    min_users=min_users)
            for fault in faults:
                for controller in controllers:
                    cells.append(CellSpec(
                        params=params, workload=workload, fault=fault,
                        controller=controller, autoscaler=autoscaler,
                        sla=sla, seed=seed, telemetry=telemetry))
    return cells
