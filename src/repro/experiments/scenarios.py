"""Pre-wired experiment scenarios matching the paper's evaluation.

Two families:

- **Sock Shop / Cart** (§5.2, Figs. 10-11, Tables 2-3): the Cart
  service's thread pool under vertical scaling (FIRM or K8s VPA), with
  Sora / ConScale / no concurrency adaptation.
- **Social Network / Post Storage** (§5.3, Fig. 12): the request
  connection pool from Home-Timeline to Post Storage under horizontal
  scaling (K8s HPA), with mid-run system-state drift.

All scales are laptop-sized: the paper's 3500-user, 12-minute traces
map to a few hundred users over a few simulated minutes (the
controllers are rate- and duration-invariant).
"""

from __future__ import annotations

import typing as _t

import repro.obs as obs_mod
from repro.app.topologies import (
    HEAVY_POSTS,
    build_social_network,
    build_sock_shop,
    set_request_weight,
)
from repro.autoscalers import (
    FirmAutoscaler,
    HorizontalPodAutoscaler,
    NullAutoscaler,
    VerticalPodAutoscaler,
)
from repro.core import (
    ClientPoolTarget,
    ConScaleController,
    MonitoringModule,
    SoraController,
    ThreadPoolTarget,
)
from repro.experiments.harness import Scenario
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

ControllerKind = _t.Literal["sora", "conscale", "none"]
AutoscalerKind = _t.Literal["firm", "vpa", "hpa", "none"]


def build_faults(fault_plan, env, app, streams, obs):
    """Wrap a plan (or ``None``) into a started-at-run injector."""
    if fault_plan is None or not fault_plan:
        return None
    return FaultInjector(env, app, fault_plan, streams, obs=obs)


def sock_shop_cart_scenario(
        *, trace: WorkloadTrace, sla: float = 0.4,
        controller: ControllerKind = "none",
        autoscaler: AutoscalerKind = "firm",
        cart_threads: int = 5, cart_cores: float = 2.0,
        max_cores: float = 4.0, seed: int = 42,
        name: str | None = None,
        obs: obs_mod.Observability | None = None,
        fault_plan: FaultPlan | None = None) -> Scenario:
    """The paper's §5.2 setup: Cart under a bursty trace.

    The Cart thread pool starts at the 2-core optimum (pre-profiled, as
    in the paper); the hardware autoscaler scales Cart's CPU; the
    controller (if any) adapts the thread pool.
    """
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=cart_threads,
                          cart_cores=cart_cores)
    cart = app.service("cart")
    monitoring = MonitoringModule(env, app)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("driver"), ramp_up=10.0)
    target = ThreadPoolTarget(cart)

    obs = obs if obs is not None else obs_mod.NULL
    scaler = build_autoscaler(autoscaler, env, app, monitoring, cart,
                               sla=sla, max_cores=max_cores,
                               request_type="cart", obs=obs)
    ctrl = build_controller(controller, env, app, monitoring, [target],
                             sla=sla, autoscaler=scaler, obs=obs)
    return Scenario(
        name=name or f"{trace.name}/{controller}+{autoscaler}",
        env=env, streams=streams, app=app, monitoring=monitoring,
        drivers=[driver], request_type="cart", sla=sla,
        controller=ctrl, autoscaler=scaler, target=target, obs=obs,
        faults=build_faults(fault_plan, env, app, streams, obs))


def sock_shop_catalogue_scenario(
        *, trace: WorkloadTrace, sla: float = 0.4,
        controller: ControllerKind = "none",
        autoscaler: AutoscalerKind = "hpa",
        db_connections: int = 60, max_replicas: int = 3,
        seed: int = 42, name: str | None = None,
        obs: obs_mod.Observability | None = None,
        fault_plan: FaultPlan | None = None) -> Scenario:
    """The paper's Fig. 1 setup: the Golang Catalogue service under
    Kubernetes HPA with a (badly sized) DB connection pool.

    Hardware-only HPA scales Catalogue replicas out, but the shared DB
    connection pool keeps admitting excessive concurrency into
    catalogue-db, producing the response-time spikes of Fig. 1; Sora
    re-sizes the pool online.
    """
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams,
                          catalogue_db_connections=db_connections)
    catalogue = app.service("catalogue")
    catalogue_db = app.service("catalogue-db")
    monitoring = MonitoringModule(env, app)
    driver = ClosedLoopDriver(env, app, "catalogue", trace,
                              streams.stream("driver"), ramp_up=10.0)
    target = ClientPoolTarget(catalogue, "db", catalogue_db)

    obs = obs if obs is not None else obs_mod.NULL
    scaler = build_autoscaler(autoscaler, env, app, monitoring,
                               catalogue, sla=sla,
                               max_replicas=max_replicas,
                               request_type="catalogue", obs=obs)
    ctrl = build_controller(controller, env, app, monitoring, [target],
                             sla=sla, autoscaler=scaler, obs=obs)
    return Scenario(
        name=name or f"{trace.name}/{controller}+{autoscaler}/catalogue",
        env=env, streams=streams, app=app, monitoring=monitoring,
        drivers=[driver], request_type="catalogue", sla=sla,
        controller=ctrl, autoscaler=scaler, target=target, obs=obs,
        faults=build_faults(fault_plan, env, app, streams, obs),
        extra_probes={
            "catalogue.busy_cores": lambda: monitoring.busy_cores_over(
                "catalogue", 1.0),
            "catalogue.replicas": lambda: float(catalogue.replica_count),
        })


def social_network_drift_scenario(
        *, trace: WorkloadTrace, sla: float = 0.4,
        controller: ControllerKind = "none",
        autoscaler: AutoscalerKind = "hpa",
        connections: int = 50, drift_at: float | None = None,
        drift_posts: int = HEAVY_POSTS, max_replicas: int = 4,
        seed: int = 42, name: str | None = None,
        obs: obs_mod.Observability | None = None,
        fault_plan: FaultPlan | None = None) -> Scenario:
    """The paper's §5.3 setup: Read-Home-Timeline under HPA with
    system-state drift.

    At ``drift_at`` seconds the request type flips from light to heavy
    (posts fetched per request increases), shifting the optimal
    connection allocation; Kubernetes HPA scales Post Storage
    horizontally; the controller (if any) adapts the shared connection
    pool from Home-Timeline to Post Storage.
    """
    env = Environment()
    streams = RandomStreams(seed)
    app = build_social_network(env, streams,
                               post_storage_connections=connections)
    post_storage = app.service("post-storage")
    home_timeline = app.service("home-timeline")
    monitoring = MonitoringModule(env, app)
    driver = ClosedLoopDriver(env, app, "read_home_timeline", trace,
                              streams.stream("driver"), ramp_up=10.0)
    target = ClientPoolTarget(home_timeline, "poststorage", post_storage)

    obs = obs if obs is not None else obs_mod.NULL
    scaler = build_autoscaler(autoscaler, env, app, monitoring,
                               post_storage, sla=sla,
                               max_replicas=max_replicas,
                               request_type="read_home_timeline", obs=obs)
    ctrl = build_controller(controller, env, app, monitoring, [target],
                             sla=sla, autoscaler=scaler, obs=obs)

    if drift_at is not None:
        def drift():
            yield env.timeout(drift_at)
            set_request_weight(app, drift_posts)
        env.process(drift(), name="state-drift")

    return Scenario(
        name=name or f"{trace.name}/{controller}+{autoscaler}/drift",
        env=env, streams=streams, app=app, monitoring=monitoring,
        drivers=[driver], request_type="read_home_timeline", sla=sla,
        controller=ctrl, autoscaler=scaler, target=target, obs=obs,
        faults=build_faults(fault_plan, env, app, streams, obs))


def build_autoscaler(kind: AutoscalerKind, env, app, monitoring,
                      service, *, sla: float, request_type: str,
                      max_cores: float = 4.0, max_replicas: int = 4,
                      obs: obs_mod.Observability | None = None):
    if kind == "firm":
        scaler = FirmAutoscaler(
            env, app, monitoring, request_type=request_type, sla=sla,
            scalable=[service.name], max_cores=max_cores)
    elif kind == "vpa":
        scaler = VerticalPodAutoscaler(
            env, service, monitoring, max_cores=max_cores)
    elif kind == "hpa":
        scaler = HorizontalPodAutoscaler(
            env, service, monitoring, max_replicas=max_replicas)
    elif kind == "none":
        scaler = NullAutoscaler(env)
    else:
        raise ValueError(f"unknown autoscaler kind {kind!r}")
    if obs:
        scaler.obs = obs
    return scaler


def build_controller(kind: ControllerKind, env, app, monitoring,
                      targets, *, sla: float, autoscaler,
                      obs: obs_mod.Observability | None = None):
    if kind == "sora":
        return SoraController(env, app, monitoring, targets, sla=sla,
                              autoscaler=autoscaler, obs=obs)
    if kind == "conscale":
        return ConScaleController(env, app, monitoring, targets,
                                  autoscaler=autoscaler, obs=obs)
    if kind == "none":
        return None
    raise ValueError(f"unknown controller kind {kind!r}")
