"""Plain-text rendering of tables and figure series.

The benchmark harness regenerates every table and figure of the paper
as text: tables as aligned ASCII grids, figure panels as sampled series
columns (suitable for eyeballing shape and for piping to a plotter).
"""

from __future__ import annotations

import typing as _t

import numpy as np


def ascii_table(headers: _t.Sequence[str],
                rows: _t.Sequence[_t.Sequence[object]],
                title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    cells += [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def series_table(columns: dict[str, tuple[np.ndarray, np.ndarray]],
                 *, step: float, until: float,
                 time_label: str = "t[s]",
                 title: str | None = None) -> str:
    """Render several time series resampled onto a shared time grid.

    Args:
        columns: label -> (times, values) series.
        step: output grid spacing (seconds).
        until: grid extent.
        time_label: heading of the time column.
        title: optional heading line.
    """
    grid = np.arange(0.0, until + step / 2, step)
    headers = [time_label] + list(columns)
    rows = []
    for t in grid:
        row: list[object] = [f"{t:.0f}"]
        for times, values in columns.values():
            row.append(_sample_at(times, values, t, step))
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def _sample_at(times: np.ndarray, values: np.ndarray, t: float,
               step: float) -> float:
    if times.size == 0:
        return float("nan")
    mask = (times >= t - step / 2) & (times < t + step / 2)
    if not mask.any():
        index = int(np.argmin(np.abs(times - t)))
        return float(values[index])
    window = values[mask]
    window = window[~np.isnan(window)]
    if window.size == 0:
        return float("nan")
    return float(np.mean(window))


def sparkline(values: _t.Sequence[float], width: int = 60) -> str:
    """A one-line unicode sketch of a series (quick shape checks)."""
    blocks = "▁▂▃▄▅▆▇█"
    array = np.asarray([v for v in values if v == v], dtype=float)
    if array.size == 0:
        return ""
    if array.size > width:
        edges = np.linspace(0, array.size, width + 1).astype(int)
        array = np.asarray([array[a:b].mean() if b > a else array[min(a, array.size - 1)]
                            for a, b in zip(edges[:-1], edges[1:])])
    low, high = float(array.min()), float(array.max())
    if high == low:
        return blocks[0] * array.size
    scaled = (array - low) / (high - low) * (len(blocks) - 1)
    return "".join(blocks[int(round(s))] for s in scaled)


def ratio(a: float, b: float) -> float:
    """Safe ``a / b`` (0 when b is 0) for speedup columns."""
    return a / b if b else 0.0
