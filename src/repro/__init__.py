"""repro: a reproduction of Sora (Middleware '23).

Latency-sensitive soft resource adaptation for microservices on a
discrete-event simulation substrate.
"""

__version__ = "0.1.0"
