"""repro: a reproduction of Sora (Middleware '23).

Latency-sensitive soft resource adaptation for microservices on a
discrete-event simulation substrate.
"""

import logging as _logging

__version__ = "0.1.0"

# Library-quiet default for the ``repro.*`` logging namespace; attach a
# real handler with ``repro.obs.configure_logging()``.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())
