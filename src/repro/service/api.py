"""Infrastructure layer: stdlib-asyncio HTTP front for the control plane.

A deliberately minimal HTTP/1.1 server over ``asyncio.start_server`` —
no web framework, no new runtime dependencies — exposing the control
plane as a JSON API:

====================================  =================================
``GET  /healthz``                     liveness + round count
``GET  /status``                      operational summary (SLO state,
                                      latency quantiles, decisions/sec)
``GET  /config``                      the effective service config
``GET  /recommendations``             all current recommendations
``GET  /recommendations/<service>``   one service's recommendation
``GET  /decisions``                   decision history as JSONL
``GET  /report``                      explainability report (text)
``GET  /metrics``                     the controller's own OpenMetrics
``GET  /debug/rounds``                flight-recorded round summaries
``GET  /debug/rounds/<round>``        one round's span tree + Jaeger
                                      export
``GET  /debug/journal``               journal lifecycle health
``GET  /debug/dashboard``             live ops console (HTML)
``POST /ingest/openmetrics``          one metrics snapshot (text body)
``POST /ingest/jaeger``               one Jaeger-shaped trace batch
``POST /control/tick``                force a control round now
``POST /admin/shutdown``              clean stop (used by CI)
====================================  =================================

Error mapping is driven by the typed
:class:`~repro.service.domain.IngestError` taxonomy: ``backpressure``
becomes HTTP 429 with a ``Retry-After`` hint, every other rejection
(including ``stale-snapshot`` time regressions) HTTP 400 with
``{"error": code, "detail": ...}``. Oversized request heads and bodies
get HTTP 413; unexpected server errors are logged with their traceback
and answered with a generic 500 body so internals never leak to
callers.

The API is unauthenticated by design (it is a lab-scale control
plane): binding anything other than loopback exposes the ingestion and
``/admin/shutdown`` endpoints to the network — keep the default
``127.0.0.1`` unless the listener sits behind your own auth layer.

Accepted stimuli are journaled through
:class:`~repro.service.audit.AuditJournal` and the decision log is
re-persisted after every round, so a crash loses at most the round in
flight and the audit trail stays replayable at all times.
"""

from __future__ import annotations

import asyncio
import json
import logging
import pathlib
import typing as _t

from repro.service.audit import AuditJournal
from repro.service.console import render_service_dashboard
from repro.service.control import ControlPlane
from repro.service.domain import IngestError, ServiceConfig

__all__ = ["ControllerService"]

_log = logging.getLogger(__name__)

_MAX_HEADER = 64 * 1024
_MAX_BODY = 64 * 1024 * 1024


def _response(status: int, body: bytes, content_type: str,
              extra: _t.Sequence[tuple[str, str]] = ()) -> bytes:
    reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
              404: "Not Found", 405: "Method Not Allowed",
              413: "Payload Too Large",
              429: "Too Many Requests",
              500: "Internal Server Error"}.get(status, "OK")
    head = [f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close"]
    head.extend(f"{key}: {value}" for key, value in extra)
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: dict,
                   extra: _t.Sequence[tuple[str, str]] = ()) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json", extra)


def _text_response(status: int, text: str,
                   content_type: str = "text/plain") -> bytes:
    return _response(status, text.encode("utf-8"),
                     f"{content_type}; charset=utf-8")


class ControllerService:
    """The running service: control plane + journal + HTTP endpoint.

    Args:
        config: control-plane configuration.
        host / port: bind address (``port=0`` picks a free port;
            :attr:`port` reports the bound one after :meth:`start`).
        cadence: *wall* seconds between automatic control rounds;
            ``0`` disables the timer (rounds then run only via
            ``POST /control/tick`` — the mode tests and the replay
            harness use).
        journal_path: JSONL audit journal destination (``None``
            journals in memory only).
        decisions_path: decision-log JSONL destination, rewritten
            after every round (``None`` disables persistence).
        max_records: decision-log ring capacity.
        journal_segment_bytes / journal_segment_age: rotation
            thresholds forwarded to
            :class:`~repro.service.audit.AuditJournal` (``0`` keeps
            the seed's single-file behaviour).
        journal_compact: collapse closed segments into checkpoint
            entries after each rotation.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 cadence: float = 0.0,
                 journal_path: str | pathlib.Path | None = None,
                 decisions_path: str | pathlib.Path | None = None,
                 max_records: int = 4096,
                 journal_segment_bytes: int = 0,
                 journal_segment_age: float = 0.0,
                 journal_compact: bool = False) -> None:
        self.plane = ControlPlane(config, max_records=max_records)
        self.journal = AuditJournal(
            journal_path,
            segment_bytes=journal_segment_bytes,
            segment_age=journal_segment_age,
            compact=journal_compact,
            checkpoint_provider=self._checkpoint,
            registry=self.plane.obs.registry)
        self.host = host
        self.port = port
        self.cadence = cadence
        self.decisions_path = (pathlib.Path(decisions_path)
                               if decisions_path is not None else None)
        self._server: asyncio.AbstractServer | None = None
        self._cadence_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the cadence timer."""
        # The stream limit bounds the request head: readuntil raises
        # LimitOverrunError past it, which _respond maps to HTTP 413.
        # Bodies are read with readexactly and bounded separately by
        # _MAX_BODY.
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_HEADER)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.cadence > 0:
            self._cadence_task = asyncio.create_task(
                self._cadence_loop())

    async def serve_until_shutdown(self) -> None:
        """Block until ``POST /admin/shutdown`` (or :meth:`stop`)."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop the timer, close the listener, flush artifacts."""
        self._shutdown.set()
        if self._cadence_task is not None:
            self._cadence_task.cancel()
            try:
                await self._cadence_task
            except asyncio.CancelledError:
                pass
            except Exception:
                _log.exception("cadence task ended with an error")
            self._cadence_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._persist_decisions()
        self.journal.close()

    async def _cadence_loop(self) -> None:
        while not self._shutdown.is_set():
            await asyncio.sleep(self.cadence)
            if self._shutdown.is_set():
                break
            try:
                self._tick()
            except Exception:
                # A failed round (e.g. decision-log persistence I/O)
                # must not silently kill automatic control while the
                # HTTP API keeps serving; log and try again next tick.
                _log.exception("control round failed; retrying on the "
                               "next cadence tick")

    def _tick(self) -> dict:
        """One control round: advance the logical clock by the
        configured logical cadence, journal the resolved time,
        re-persist the decision log."""
        now = self.plane.now + self.plane.config.cadence
        record = self.plane.tick(now=now)
        self.journal.record("tick", record.time)
        self._persist_decisions()
        return record.to_dict()

    def _checkpoint(self) -> tuple[dict, list[str]]:
        """Compaction cut: exact plane state + every decision line."""
        return (self.plane.checkpoint(),
                self.plane.decisions_jsonl().splitlines())

    def _persist_decisions(self) -> None:
        if self.decisions_path is not None:
            self.decisions_path.parent.mkdir(parents=True,
                                             exist_ok=True)
            self.decisions_path.write_text(
                self.plane.decisions_jsonl(), encoding="utf-8")

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except Exception:
            # Log the traceback server-side; the client gets a generic
            # body so internal details (paths, state) never leak out.
            _log.exception("unhandled error while serving a request")
            response = _json_response(
                500, {"error": "internal",
                      "detail": "internal server error"})
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            # The stream limit (start_server limit=_MAX_HEADER) fired
            # before the head terminator arrived.
            return _json_response(
                413, {"error": "bad-request",
                      "detail": f"request head exceeds the "
                                f"{_MAX_HEADER}-byte limit"})
        except asyncio.IncompleteReadError:
            return _json_response(
                400, {"error": "bad-request",
                      "detail": "malformed HTTP request head"})
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return _json_response(
                400, {"error": "bad-request",
                      "detail": f"malformed request line {lines[0]!r}"})
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, _sep, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        if length > _MAX_BODY:
            return _json_response(
                413, {"error": "bad-request",
                      "detail": f"body of {length} bytes exceeds the "
                                f"{_MAX_BODY}-byte limit"})
        body = b""
        if length > 0:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return _json_response(
                    400, {"error": "bad-request",
                          "detail": "body shorter than Content-Length"})
        path = target.split("?", 1)[0]
        return self._route(method.upper(), path, body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, body: bytes) -> bytes:
        plane = self.plane
        if method == "GET":
            if path == "/healthz":
                return _json_response(200, {
                    "status": "ok", "rounds": plane.rounds,
                    "now": plane.now})
            if path == "/status":
                return _json_response(200, plane.status())
            if path == "/config":
                return _json_response(200, plane.config.to_dict())
            if path == "/recommendations":
                return _json_response(
                    200, {"recommendations":
                          plane.recommendation_dicts()})
            if path.startswith("/recommendations/"):
                service = path[len("/recommendations/"):]
                rec = plane.recommendations.get(service)
                if rec is None:
                    return _json_response(
                        404, {"error": "not-found",
                              "detail": f"no recommendation for "
                                        f"{service!r} yet"})
                return _json_response(200, rec.to_dict())
            if path == "/decisions":
                return _response(200,
                                 plane.decisions_jsonl().encode("utf-8"),
                                 "application/x-ndjson")
            if path == "/report":
                return _text_response(200, plane.report())
            if path == "/metrics":
                return _text_response(
                    200, plane.openmetrics(),
                    "application/openmetrics-text")
            if path == "/debug/rounds":
                return _json_response(200, {
                    "enabled": bool(plane.flight),
                    "capacity": plane.flight.max_rounds,
                    "recorded": plane.flight.rounds_recorded,
                    "rounds": plane.flight.summaries()})
            if path.startswith("/debug/rounds/"):
                ordinal = path[len("/debug/rounds/"):]
                detail = (plane.flight.round(int(ordinal))
                          if ordinal.isdigit() else None)
                if detail is None:
                    return _json_response(
                        404, {"error": "not-found",
                              "detail": f"no flight-recorded round "
                                        f"{ordinal!r} (retained: "
                                        f"{len(plane.flight)})"})
                return _json_response(200, detail)
            if path == "/debug/journal":
                return _json_response(200, self.journal.health())
            if path == "/debug/dashboard":
                return _text_response(
                    200,
                    render_service_dashboard(plane, self.journal),
                    "text/html")
            return _json_response(
                404, {"error": "not-found",
                      "detail": f"unknown path {path!r}"})
        if method == "POST":
            if path == "/ingest/openmetrics":
                return self._ingest(
                    lambda: plane.ingest_metrics(
                        body.decode("utf-8", errors="replace")),
                    "metrics", body)
            if path == "/ingest/jaeger":
                return self._ingest(
                    lambda: plane.ingest_traces(body), "traces", body)
            if path == "/control/tick":
                return _json_response(200, {
                    "round": self._tick(),
                    "recommendations": plane.recommendation_dicts()})
            if path == "/admin/shutdown":
                self._shutdown.set()
                return _json_response(200, {"status": "shutting-down",
                                            "rounds": plane.rounds})
            return _json_response(
                404, {"error": "not-found",
                      "detail": f"unknown path {path!r}"})
        return _json_response(
            405, {"error": "method-not-allowed",
                  "detail": f"{method} {path} is not supported"})

    def _ingest(self, action: _t.Callable[[], dict],
                kind: str, body: bytes) -> bytes:
        try:
            summary = action()
        except IngestError as exc:
            if exc.code == "backpressure":
                retry = max(1, int(round(self.cadence))
                            if self.cadence > 0 else 1)
                return _json_response(
                    429, exc.to_dict(),
                    extra=(("Retry-After", str(retry)),))
            return _json_response(400, exc.to_dict())
        self.journal.record(
            _t.cast(_t.Literal["metrics", "traces"], kind),
            self.plane.now, body.decode("utf-8", errors="replace"))
        return _json_response(202, summary)

    # ------------------------------------------------------------------
    # Blocking entry point (CLI)
    # ------------------------------------------------------------------
    def run(self, announce: _t.Callable[[str], None] = print) -> None:
        """Start, announce the bound address, serve until shutdown."""

        async def _main() -> None:
            await self.start()
            announce(f"sora-service listening on "
                     f"http://{self.host}:{self.port} "
                     f"(cadence={self.cadence:g}s wall, "
                     f"round={self.plane.config.cadence:g}s logical)")
            await self.serve_until_shutdown()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
