"""Load generator: point the simulator at a running control plane.

This closes the loop the tentpole asks for — the DES simulator plays
the role of "any system" and the service plays the controller:

1. build an uncontrolled scenario (``controller="none"``) and step its
   environment in wall-bounded chunks;
2. after each chunk, render a hand-written OpenMetrics snapshot (the
   same exposition format the strict parser accepts): per-service
   utilization from the monitoring module, plus the soft-resource
   target's ``<concurrency, goodput>`` interval means from a
   :class:`~repro.metrics.sampler.ConcurrencyGoodputSampler`;
3. export the chunk's finished traces as a Jaeger-shaped batch;
4. POST both to the service, forcing a control round every
   ``tick_every`` simulated seconds;
5. optionally apply returned recommendations back onto the simulated
   pool (``apply=True``), making the external service the closed-loop
   controller of the simulation.

The HTTP client is stdlib ``urllib`` — the driver deliberately talks
to the service the way an external exporter would, over real sockets,
not via in-process calls.
"""

from __future__ import annotations

import json
import time as _time
import typing as _t
import urllib.error
import urllib.request
from dataclasses import dataclass, field

import numpy as np

from repro.experiments import (
    social_network_drift_scenario,
    sock_shop_cart_scenario,
    sock_shop_catalogue_scenario,
)
from repro.metrics.sampler import ConcurrencyGoodputSampler
from repro.tracing.export import export_traces
from repro.workloads import build_trace

__all__ = ["DriveReport", "drive", "render_snapshot"]

SCENARIOS = {
    "cart": sock_shop_cart_scenario,
    "catalogue": sock_shop_catalogue_scenario,
    "drift": social_network_drift_scenario,
}


@dataclass
class DriveReport:
    """Outcome of one drive session against a running service.

    Attributes:
        duration: simulated seconds driven.
        snapshots / trace_batches / ticks: requests issued per kind.
        traces_sent: finished traces shipped in Jaeger batches.
        applied: ``(time, service, allocation)`` recommendations the
            driver applied back onto the simulation (``apply=True``).
        recommendations: the service's final recommendation map.
        status: the service's final ``/status`` body.
    """

    duration: float
    snapshots: int = 0
    trace_batches: int = 0
    ticks: int = 0
    traces_sent: int = 0
    applied: list[tuple[float, str, int]] = field(default_factory=list)
    recommendations: dict[str, dict] = field(default_factory=dict)
    status: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "duration": self.duration,
            "snapshots": self.snapshots,
            "trace_batches": self.trace_batches,
            "ticks": self.ticks,
            "traces_sent": self.traces_sent,
            "applied": [[t, s, a] for t, s, a in self.applied],
            "recommendations": self.recommendations,
            "status": self.status,
        }


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_snapshot(now: float, utilization: dict[str, float],
                    concurrency: dict[str, float],
                    goodput: dict[str, float],
                    allocation: dict[str, int] | None = None, *,
                    label: str = "service",
                    prefix: str = "sora") -> str:
    """Render one scrape in the exposition the service ingests.

    The output round-trips through the strict
    :func:`repro.obs.parse_openmetrics` parser; family names follow
    the service's defaults (``sora_concurrency``, ``sora_goodput``,
    ``sora_utilization``, ``sora_allocation``, ``sora_now``).
    """
    lines: list[str] = []

    def family(name: str, values: _t.Mapping[str, float]) -> None:
        if not values:
            return
        lines.append(f"# TYPE {prefix}_{name} gauge")
        for service in sorted(values):
            value = float(values[service])
            lines.append(
                f'{prefix}_{name}{{{label}="{_escape(service)}"}} '
                f"{value:.10g}")

    lines.append(f"# TYPE {prefix}_now gauge")
    lines.append(f"{prefix}_now {now:.10g}")
    family("concurrency", concurrency)
    family("goodput", goodput)
    family("utilization", utilization)
    if allocation:
        family("allocation", {k: float(v)
                              for k, v in allocation.items()})
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class ServiceClient:
    """Tiny stdlib HTTP client for the service's JSON API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str,
                body: str | bytes | None = None,
                content_type: str = "text/plain") -> dict:
        """One request; JSON bodies are decoded, errors raised."""
        data = (body.encode("utf-8") if isinstance(body, str)
                else body)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": content_type} if data else {})
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as reply:
            text = reply.read().decode("utf-8")
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return {"text": text}

    def wait_healthy(self, attempts: int = 50,
                     delay: float = 0.1) -> dict:
        """Poll ``/healthz`` until the service answers."""
        last: Exception | None = None
        for _attempt in range(attempts):
            try:
                return self.request("GET", "/healthz")
            except (urllib.error.URLError, ConnectionError) as exc:
                last = exc
                _time.sleep(delay)
        raise RuntimeError(
            f"service at {self.base_url} never became healthy: {last}")


def drive(url: str, *, scenario: str = "cart",
          trace: str = "steep_tri_phase", duration: float = 120.0,
          interval: float = 0.5, tick_every: float = 15.0,
          sla: float = 0.4, seed: int = 42, peak_users: int = 250,
          min_users: int = 40, autoscaler: str = "none",
          apply: bool = False, traces_per_batch: int = 200,
          client: ServiceClient | None = None) -> DriveReport:
    """Drive a simulated workload into the service at ``url``.

    Args:
        url: service base URL (e.g. ``http://127.0.0.1:8787``).
        scenario: ``cart`` / ``catalogue`` / ``drift``.
        trace: workload trace shape name.
        duration: simulated seconds to drive.
        interval: simulated seconds per exported snapshot.
        tick_every: simulated seconds between forced control rounds.
        sla: end-to-end SLA handed to the scenario and used as the
            goodput threshold the exporter measures against.
        seed / peak_users / min_users: workload shaping.
        autoscaler: hardware autoscaler kind for the scenario
            (``none`` keeps the pool the only control surface).
        apply: apply returned recommendations onto the simulated pool
            after each tick (full closed loop).
        traces_per_batch: cap on traces shipped per chunk.
        client: injected HTTP client (tests); defaults to a
            :class:`ServiceClient` for ``url``.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r} "
                         f"(have {sorted(SCENARIOS)})")
    http = client if client is not None else ServiceClient(url)
    http.wait_healthy()

    workload = build_trace(trace, duration=duration,
                           peak_users=peak_users, min_users=min_users)
    built = SCENARIOS[scenario](
        trace=workload, controller="none",
        autoscaler=_t.cast(_t.Any, autoscaler), sla=sla, seed=seed)
    env, app, target = built.env, built.app, built.target
    assert target is not None
    monitoring = built.monitoring
    monitoring.start()
    if built.autoscaler is not None:
        built.autoscaler.start()
    sampler = ConcurrencyGoodputSampler(
        env, target.concurrency_integral,
        lambda since, until: target.completion_latencies(since, until),
        threshold_provider=lambda: sla,
        name=f"drive:{target.name}")
    sampler.start()
    for load in built.drivers:
        load.start()

    report = DriveReport(duration=duration)
    service_name = target.service.name
    next_tick = tick_every
    steps = max(1, int(round(duration / interval)))
    last_t = 0.0
    for step in range(1, steps + 1):
        t = min(duration, step * interval)
        env.run(until=t)
        chunk = t - last_t
        concurrency_values = sampler.concurrency.window(last_t, t)[1]
        goodput_values = sampler.goodput.window(last_t, t)[1]
        if concurrency_values.size and goodput_values.size:
            pairs = {service_name: float(concurrency_values.mean())}
            rates = {service_name: float(goodput_values.mean())}
        else:
            pairs = {service_name: float(target.concurrency())}
            rates = {service_name: 0.0}
        utilization = {name: monitoring.utilization_over(name, chunk)
                       for name in app.services}
        snapshot = render_snapshot(
            t, utilization, pairs, rates,
            {service_name: target.allocation()})
        http.request("POST", "/ingest/openmetrics", snapshot,
                     content_type="application/openmetrics-text")
        report.snapshots += 1

        roots = app.warehouse.traces(last_t, t)
        if roots:
            roots = roots[:traces_per_batch]
            http.request("POST", "/ingest/jaeger",
                         export_traces(roots),
                         content_type="application/json")
            report.trace_batches += 1
            report.traces_sent += len(roots)

        if t >= next_tick or step == steps:
            reply = http.request("POST", "/control/tick", b"")
            report.ticks += 1
            next_tick += tick_every
            if apply:
                recs = reply.get("recommendations", {})
                rec = recs.get(service_name)
                if rec and rec["allocation"] != target.allocation():
                    target.apply(int(rec["allocation"]))
                    report.applied.append(
                        (t, service_name, int(rec["allocation"])))
        last_t = t

    report.recommendations = http.request(
        "GET", "/recommendations")["recommendations"]
    report.status = http.request("GET", "/status")
    return report
