"""Application layer: the online localization → propagation → SCG loop.

:class:`ControlPlane` is the long-lived, transport-free core of the
service. Adapters feed it validated snapshots and trace batches; on
each control round it re-runs the paper's pipeline over its streaming
state:

1. **Localization** — utilization screening plus the streaming-Pearson
   critical-path aggregator
   (:meth:`~repro.core.localization.CriticalServiceLocator.
   locate_from_aggregate`), so the signal survives bounded memory and
   arbitrary trace sampling upstream.
2. **Deadline propagation** — per-trace upstream budgets are folded at
   ingest time into a bounded window, so the per-round threshold is a
   cheap mean even with thousands of candidate services.
3. **SCG estimation** — the scatter-curve model over each decided
   service's windowed ``<Q, GP>`` pairs.

Every round appends a :class:`~repro.obs.events.ControlRoundRecord` to
the decision log. ``wall_ms`` is deliberately left unset on these
records: the audit trail must replay byte-identically from the journal,
and wall clocks do not replay. Wall latencies instead feed the
service's *own* observability — a P² sketch and registry histogram of
per-recommendation latency plus an SLO monitor with a burn-rate budget
on the controller itself — exported through the existing OpenMetrics
path.

Determinism contract: given the same sequence of
``ingest_metrics`` / ``ingest_traces`` / ``tick`` calls (with the
times the journal recorded), a fresh plane reproduces the decision
JSONL byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import time as _time
import typing as _t
from collections import deque

import numpy as np

from repro.core.localization import CriticalServiceLocator
from repro.core.scg import SCGModel
from repro.obs import (
    ControlRoundRecord,
    Observability,
    QuantileSketch,
    SLOMonitor,
    SLOSpec,
    TargetDecision,
    render_openmetrics,
    render_text,
)
from repro.service.domain import (
    IngestError,
    Recommendation,
    SeriesState,
    ServiceConfig,
)
from repro.service.flight import FlightRecorder
from repro.service.ingest import parse_metrics_snapshot, parse_trace_batch
from repro.tracing.analytics import CriticalPathAggregator
from repro.tracing.critical_path import extract_critical_path

__all__ = ["ControlPlane"]

#: Name stamped on every control round the service emits.
CONTROLLER_NAME = "service"


class ControlPlane:
    """Transport-free online controller over streaming telemetry.

    Args:
        config: pipeline tuning (see
            :class:`~repro.service.domain.ServiceConfig`).
        max_records: decision-log ring capacity.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 max_records: int = 4096) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.max_records = max_records
        #: Self-tracing flight recorder (falsy when
        #: ``cfg.flight_rounds == 0`` — every hook below degrades to a
        #: single truthiness check).
        self.flight = FlightRecorder(cfg.flight_rounds)
        #: Decision JSONL lines carried over from a journal checkpoint;
        #: merged (and ring-truncated) into :meth:`decisions_jsonl`.
        self._restored_decisions: list[str] = []
        self.locator = CriticalServiceLocator(
            utilization_threshold=cfg.utilization_threshold,
            exclude=cfg.exclude)
        self.model = SCGModel(cfg.scatter)
        self.analytics = CriticalPathAggregator()
        self.obs = Observability(max_records=max_records)
        self.obs.slo = SLOMonitor(SLOSpec(
            name="service-recommendation",
            latency_threshold=cfg.latency_slo))
        # Expose ingested-trace aggregates through the same OpenMetrics
        # families a simulator run exports (repro_trace_*), exemplars
        # included.
        self.obs.trace_analytics = self.analytics
        self.analytics.latency_histogram = (
            self.obs.registry.histogram("trace.latency"))
        #: Per-recommendation wall latency in seconds (P50/P99).
        self.latency = QuantileSketch((0.5, 0.99))

        self._series: dict[str, SeriesState] = {}
        #: Per-trace ``service -> upstream self-time budget`` along the
        #: critical path, folded at ingest so round-time propagation is
        #: a mean over this window instead of a re-walk of every trace.
        self._budgets: deque[dict[str, float]] = deque(
            maxlen=cfg.trace_window)
        self.recommendations: dict[str, Recommendation] = {}
        #: Logical clock: advanced by snapshot timestamps, trace
        #: departures, and control rounds — never by the wall clock.
        self.now = 0.0
        self.rounds = 0
        self.snapshots_ingested = 0
        self.traces_ingested = 0
        self.decisions_made = 0
        self._pending = 0
        self._wall_total = 0.0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Accepted snapshots queued since the last control round."""
        return self._pending

    def ingest_metrics(self, text: str) -> dict:
        """Fold one OpenMetrics snapshot into the per-service state.

        The snapshot is validated in full before any state mutates, so
        a rejection leaves the plane (and therefore the journal/replay
        contract) untouched.

        Raises:
            IngestError: validation failures (propagated from the
                adapter), ``"backpressure"`` when more than
                ``max_pending`` snapshots queued since the last round,
                ``"series-limit"`` when the snapshot would create more
                tracked services than ``max_series`` allows,
                ``"stale-snapshot"`` when the snapshot's time precedes
                a sample already observed for one of its series (the
                per-series clocks must be non-decreasing).
        """
        cfg = self.config
        flight = self.flight
        flight_started = flight.clock() if flight else 0.0
        if self._pending >= cfg.max_pending:
            self.obs.registry.counter("service.rejected").inc()
            raise IngestError(
                "backpressure",
                f"{self._pending} snapshots already queued since the "
                f"last control round (max_pending={cfg.max_pending}); "
                f"retry after the next round")
        snapshot = parse_metrics_snapshot(text, cfg)
        fresh = [name for name in snapshot.series
                 if name not in self._series]
        if len(self._series) + len(fresh) > cfg.max_series:
            self.obs.registry.counter("service.rejected").inc()
            raise IngestError(
                "series-limit",
                f"snapshot would track {len(self._series) + len(fresh)}"
                f" services (max_series={cfg.max_series})")
        now = (snapshot.time if snapshot.time is not None
               else self.now + 1.0)
        # Reject time regressions *before* mutating anything: a partial
        # apply would journal nothing yet leave live state diverged
        # from the journal, breaking replay byte-identity.
        stale = sorted(
            name for name, sample in snapshot.series.items()
            if not (np.isnan(sample.concurrency)
                    or np.isnan(sample.rate))
            and name in self._series
            and self._series[name].snapshots > 0
            and now < self._series[name].updated)
        if stale:
            self.obs.registry.counter("service.rejected").inc()
            latest = max(self._series[name].updated for name in stale)
            raise IngestError(
                "stale-snapshot",
                f"snapshot time {now} precedes already-observed "
                f"samples (latest {latest}) for: {', '.join(stale)}")
        self.now = max(self.now, now)
        for name, sample in snapshot.series.items():
            state = self._series.get(name)
            if state is None:
                state = self._series[name] = SeriesState(name)
            if np.isnan(sample.concurrency) or np.isnan(sample.rate):
                # Utilization-only enrichment: no pair to append.
                if sample.utilization is not None:
                    state.utilization = float(sample.utilization)
                continue
            state.observe(now, sample.concurrency, sample.rate,
                          sample.utilization, sample.allocation)
        self._pending += 1
        self.snapshots_ingested += 1
        if flight:
            flight.note_ingest("metrics", flight_started)
        self.obs.registry.counter("service.snapshots").inc()
        self.obs.registry.gauge("service.series").set(
            float(len(self._series)))
        return {"accepted": True, "time": now,
                "series": sorted(snapshot.series),
                "pending": self._pending}

    def ingest_traces(self, body: str | bytes) -> dict:
        """Fold one Jaeger-shaped trace batch into the aggregates."""
        flight = self.flight
        flight_started = flight.clock() if flight else 0.0
        roots = parse_trace_batch(body)
        for root in roots:
            self.analytics.observe(root)
            path = extract_critical_path(root)
            budgets: dict[str, float] = {}
            upstream = 0.0
            for span in path.spans:
                budgets[span.service] = upstream
                upstream += span.self_time()
            self._budgets.append(budgets)
            self.now = max(self.now, _t.cast(float, root.departure))
        self.traces_ingested += len(roots)
        if flight:
            flight.note_ingest("traces", flight_started)
        self.obs.registry.counter("service.traces").inc(len(roots))
        return {"accepted": True, "traces": len(roots),
                "observed": self.analytics.traces_observed}

    # ------------------------------------------------------------------
    # Control rounds
    # ------------------------------------------------------------------
    def _threshold(self, service: str) -> float:
        """Propagated RT threshold from the ingest-time budget window.

        Mean of ``sla - upstream_budget`` over window traces whose
        critical path crossed ``service``, clamped to
        ``[floor_fraction * sla, sla]``; the full SLA when no trace
        did (a service with no observed upstreams keeps the whole
        budget) — the same semantics as
        :class:`~repro.core.deadline.DeadlinePropagator`.
        """
        cfg = self.config
        budgets = [entry[service] for entry in self._budgets
                   if service in entry]
        if not budgets:
            return cfg.sla
        mean = cfg.sla - float(np.mean(budgets))
        return min(cfg.sla, max(cfg.sla * cfg.floor_fraction, mean))

    def _decide(self, service: str, now: float,
                threshold: float) -> TargetDecision:
        """Estimate one service's optimum and record the verdict."""
        cfg = self.config
        state = self._series[service]
        flight = self.flight
        est_started = flight.clock() if flight else 0.0
        started = _time.perf_counter()
        concurrency, rate = state.pairs(now - cfg.window)
        estimate = self.model.estimate(concurrency, rate,
                                       threshold=threshold)
        previous = self.recommendations.get(service)
        before = (state.allocation if state.allocation is not None
                  else previous.allocation if previous is not None
                  else cfg.min_allocation)
        if estimate is None:
            decision = TargetDecision(
                target=service, trigger="round", outcome="hold",
                reason="no-estimate", before=before, after=before,
                threshold=threshold, samples=len(concurrency))
        else:
            allocation = min(cfg.max_allocation,
                             max(cfg.min_allocation,
                                 estimate.optimal_concurrency))
            knee = estimate.knee
            knee_q = float(knee.knee_x) if knee.found else None
            knee_rate = float(knee.knee_y) if knee.found else None
            decision = TargetDecision(
                target=service, trigger="round",
                outcome=("applied" if allocation != before else "hold"),
                reason=(estimate.method if allocation != before
                        else "unchanged"),
                before=before, after=allocation, threshold=threshold,
                method=estimate.method,
                knee_concurrency=knee_q,
                knee_rate=knee_rate,
                poly_degree=estimate.fit.degree,
                samples=estimate.samples,
                max_concurrency=float(estimate.max_concurrency),
                fit_r2=(float(estimate.fit_r2)
                        if np.isfinite(estimate.fit_r2) else None))
            self.recommendations[service] = Recommendation(
                service=service, allocation=allocation, before=before,
                method=estimate.method, threshold=threshold,
                round=self.rounds + 1, time=now,
                samples=estimate.samples,
                max_concurrency=float(estimate.max_concurrency),
                poly_degree=estimate.fit.degree,
                fit_r2=(float(estimate.fit_r2)
                        if np.isfinite(estimate.fit_r2) else None),
                knee_concurrency=knee_q,
                knee_rate=knee_rate)
            self.obs.timeline.record(f"rec.{service}", now,
                                     float(allocation))
        wall = _time.perf_counter() - started
        self._wall_total += wall
        if flight:
            flight.note_estimate(service, est_started, flight.clock())
        self.latency.observe(wall)
        histogram = self.obs.registry.histogram(
            "service.recommendation.latency")
        histogram.observe(wall)
        # Exemplar: pin the slowest recommendation to the self-trace
        # of the round that produced it, so the `/metrics` scrape links
        # straight into `/debug/rounds/{id}`.
        histogram.link_exemplar(self.rounds + 1, wall, now)
        assert self.obs.slo is not None
        self.obs.slo.observe(now, wall)
        return decision

    def tick(self, now: float | None = None,
             trigger: str = "cadence") -> ControlRoundRecord:
        """Run one control round at logical time ``now``.

        When ``now`` is omitted the round runs at the current logical
        clock. The resolved time is stamped on the returned record —
        journal it, and replay becomes exact.
        """
        cfg = self.config
        if now is None:
            now = self.now
        self.now = max(self.now, now)
        flight = self.flight
        mark_started = flight.clock() if flight else 0.0
        utilizations = {name: state.utilization
                        for name, state in self._series.items()
                        if state.utilization is not None}
        report = self.locator.locate_from_aggregate(
            self.analytics, utilizations)

        # Only services whose source exports pair telemetry can be
        # estimated; utilization-only series still feed screening and
        # correlations but cannot receive a verdict.
        instrumented = {name for name, state in self._series.items()
                        if state.snapshots > 0}
        if cfg.decide_top_k == 0:
            decided = sorted(instrumented)
        else:
            ranked = sorted(
                (name for name in report.correlations
                 if name in instrumented),
                key=lambda name: -report.correlations[name])
            decided = []
            if report.critical_service in instrumented:
                decided.append(
                    _t.cast(str, report.critical_service))
            for name in ranked:
                if len(decided) >= cfg.decide_top_k:
                    break
                if name not in decided:
                    decided.append(name)
        mark_localized = flight.clock() if flight else 0.0

        thresholds = {name: self._threshold(name) for name in decided}
        mark_propagated = flight.clock() if flight else 0.0
        decisions = tuple(self._decide(name, now, thresholds[name])
                          for name in decided)
        mark_decided = flight.clock() if flight else 0.0
        record = ControlRoundRecord(
            time=now, controller=CONTROLLER_NAME, trigger=trigger,
            critical_service=report.critical_service,
            dominant_path=report.dominant_path,
            correlations=report.correlations,
            candidates=report.candidates,
            thresholds=thresholds,
            decisions=decisions,
            traces=self.analytics.traces_observed)
        self.obs.record(record)
        self.rounds += 1
        self.decisions_made += len(decisions)
        self._pending = 0
        for state in self._series.values():
            state.prune(now - 2.0 * cfg.window)
        registry = self.obs.registry
        registry.counter("service.rounds").inc()
        registry.counter("service.decisions").inc(len(decisions))
        registry.gauge("service.pending").set(0.0)
        if self.latency.count:
            registry.gauge("service.recommendation.p50.seconds").set(
                self.latency.quantile(0.5))
            registry.gauge("service.recommendation.p99.seconds").set(
                self.latency.quantile(0.99))
        if self._wall_total > 0.0:
            registry.gauge("service.decisions.per.second").set(
                self.decisions_made / self._wall_total)
        self.obs.timeline.record("service.series", now,
                                 float(len(self._series)))
        if flight:
            flight.record_round(
                round_index=self.rounds, time=now, trigger=trigger,
                critical_service=report.critical_service,
                decisions=[decision.target for decision in decisions],
                started=mark_started, localized=mark_localized,
                propagated=mark_propagated, decided=mark_decided)
            registry.gauge("service.flight.rounds").set(
                float(len(flight)))
        return record

    # ------------------------------------------------------------------
    # Checkpoint / restore (journal compaction)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Exact decision-relevant state, JSON-ready.

        Captures everything the next ``tick`` reads when producing a
        decision record: per-series pair windows, the deadline budget
        window, current recommendations (the ``before`` baseline),
        counters, the logical clock, and the critical-path aggregator
        (correlations + top-k paths + sketches). Wall-clock artifacts
        (latency sketches, the SLO monitor, the flight recorder) are
        deliberately excluded — they never reach decision records, so
        a restored plane replays the journal tail byte-identically
        without them.
        """
        return {
            "version": 1,
            "now": self.now,
            "rounds": self.rounds,
            "snapshots_ingested": self.snapshots_ingested,
            "traces_ingested": self.traces_ingested,
            "decisions_made": self.decisions_made,
            "pending": self._pending,
            "series": {name: state.state_dict()
                       for name, state in sorted(self._series.items())},
            "budgets": [dict(entry) for entry in self._budgets],
            "recommendations": {
                name: dataclasses.asdict(rec)
                for name, rec in sorted(self.recommendations.items())},
            "analytics": self.analytics.state_dict(),
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint` (call on a fresh plane)."""
        version = state.get("version")
        if version != 1:
            raise ValueError(
                f"unsupported checkpoint version {version!r}")
        cfg = self.config
        self.now = float(state["now"])
        self.rounds = int(state["rounds"])
        self.snapshots_ingested = int(state["snapshots_ingested"])
        self.traces_ingested = int(state["traces_ingested"])
        self.decisions_made = int(state["decisions_made"])
        self._pending = int(state["pending"])
        self._series = {
            name: SeriesState.from_state(name, series_state)
            for name, series_state in state["series"].items()}
        self._budgets = deque(
            ({service: float(budget)
              for service, budget in entry.items()}
             for entry in state["budgets"]),
            maxlen=cfg.trace_window)
        self.recommendations = {
            name: Recommendation(**payload)
            for name, payload in state["recommendations"].items()}
        self.analytics.load_state(state["analytics"])

    def seed_decisions(self, lines: _t.Sequence[str]) -> None:
        """Install decision JSONL lines preserved by a checkpoint.

        The lines prepend the live ring in :meth:`decisions_jsonl`;
        the merged trail is truncated to the last ``max_records``
        lines, matching the ring a never-compacted plane would hold.
        """
        self._restored_decisions = [line for line in lines if line]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def recommendation_dicts(self) -> dict[str, dict]:
        """All current recommendations, JSON-ready, keyed by service."""
        return {name: rec.to_dict()
                for name, rec in sorted(self.recommendations.items())}

    def status(self) -> dict:
        """JSON-ready operational summary (the ``/status`` body)."""
        latency: dict[str, _t.Any] = {"count": self.latency.count}
        if self.latency.count:
            latency.update(
                p50_ms=round(self.latency.quantile(0.5) * 1e3, 3),
                p99_ms=round(self.latency.quantile(0.99) * 1e3, 3),
                mean_ms=round(self.latency.mean * 1e3, 3))
        slo = self.obs.slo
        assert slo is not None
        return {
            "controller": CONTROLLER_NAME,
            "now": self.now,
            "rounds": self.rounds,
            "snapshots": self.snapshots_ingested,
            "traces": self.traces_ingested,
            "series": len(self._series),
            "pending": self._pending,
            "decisions": self.decisions_made,
            "recommendations": len(self.recommendations),
            "recommendation_latency": latency,
            "decisions_per_sec": (
                round(self.decisions_made / self._wall_total, 3)
                if self._wall_total > 0 else None),
            "slo": {
                "name": slo.spec.name,
                "latency_threshold": slo.spec.latency_threshold,
                "objective": slo.spec.objective,
                "compliance": round(slo.compliance(), 6),
                "observed": slo.total,
            },
        }

    def report(self) -> str:
        """Explainability report over the decision log (text)."""
        return render_text(self.obs, title="sora-service")

    def openmetrics(self) -> str:
        """The service's own state as an OpenMetrics exposition."""
        return render_openmetrics(self.obs, now=self.now)

    def decisions_jsonl(self) -> str:
        """The decision trail as JSONL (the persisted audit artifact).

        Checkpoint-restored lines come first, then the live ring; the
        merge keeps only the last ``max_records`` lines so a compacted
        replay matches what an uncompacted plane would have persisted.
        """
        lines = list(self._restored_decisions)
        text = self.obs.decisions.to_jsonl()
        if text:
            lines.extend(text.split("\n"))
        lines = lines[-self.max_records:] if self.max_records else lines
        return "\n".join(lines) + "\n" if lines else ""
