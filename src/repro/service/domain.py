"""Domain model of the standalone control-plane service.

The service layer turns the in-simulator adaptation framework into a
long-lived controller any system can point telemetry at. This module
holds the *domain* vocabulary that the ingestion adapters and the
control application layer share — deliberately free of HTTP, asyncio,
and persistence concerns:

- :class:`ServiceConfig` — every tunable of the online pipeline
  (metric family names, SLA, cadence, scatter-model knobs, bounds);
- :class:`SeriesState` — the bounded streaming state kept per
  monitored service (windowed ``<concurrency, goodput>`` pairs plus
  the latest utilization/allocation readings);
- :class:`Recommendation` — one SCG-backed soft-resource verdict,
  JSON-ready for the API layer;
- :class:`IngestError` — the typed rejection taxonomy every adapter
  raises, so the API layer can map causes onto status codes without
  string matching.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.core.scg import ScatterModelConfig
from repro.metrics.sampler import TimeSeries

__all__ = [
    "IngestError",
    "Recommendation",
    "SeriesState",
    "ServiceConfig",
]

#: Rejection causes an adapter may raise (``IngestError.code``).
IngestErrorCode = _t.Literal[
    "bad-openmetrics",   # strict parser rejected the exposition text
    "bad-json",          # trace batch is not valid JSON
    "bad-jaeger",        # JSON parsed but the Jaeger shape is broken
    "missing-family",    # required metric family absent from snapshot
    "missing-label",     # sample lacks the identifying service label
    "backpressure",      # ingestion outpaced the control cadence
    "series-limit",      # snapshot would exceed the tracked-series cap
    "stale-snapshot",    # snapshot time precedes already-observed samples
]


class IngestError(ValueError):
    """A rejected ingest payload, tagged with a machine-readable cause.

    Attributes:
        code: one of the :data:`IngestErrorCode` literals; the API
            layer maps ``"backpressure"`` to HTTP 429 and everything
            else to HTTP 400.
        detail: human-readable explanation (for OpenMetrics payloads
            this preserves the strict parser's original message, so the
            established error taxonomy — "bad sample", "bad comment",
            "missing # EOF terminator", ... — surfaces verbatim).
    """

    def __init__(self, code: IngestErrorCode, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail

    def to_dict(self) -> dict:
        """JSON-ready error body for the API layer."""
        return {"error": self.code, "detail": self.detail}


def _default_scatter() -> ScatterModelConfig:
    # Snapshots arrive at whatever cadence the external scraper runs
    # (seconds, not the simulator's 100 ms), so the service needs fewer
    # raw pairs and a coarser concurrency grid than the embedded
    # controller to reach a verdict in a reasonable number of scrapes.
    return ScatterModelConfig(min_samples=30, min_distinct=5,
                              quantum=1.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the online adaptation pipeline.

    Attributes:
        sla: end-to-end SLA in seconds (deadline-propagation input).
        floor_fraction: propagated thresholds never drop below
            ``floor_fraction * sla``.
        utilization_threshold: localization screening bound (§3.2
            step 1).
        cadence: *logical* seconds a control round advances the
            service clock when the caller does not supply a time.
        window: logical seconds of ``<Q, GP>`` pairs a round consumes.
        trace_window: finished trace roots retained for deadline
            propagation (localization itself is streaming and
            unbounded-window by design).
        max_pending: accepted metric snapshots allowed to queue
            between control rounds before ingestion is pushed back
            (HTTP 429) — the service refuses to buffer unboundedly
            when ingestion outpaces the control cadence.
        max_series: cap on distinct monitored services.
        decide_top_k: how many correlation-ranked services receive an
            estimate per round (``0`` = every series with data; the
            service-SLO bench uses this to stress thousands of
            estimates per round).
        min_allocation / max_allocation: recommendation clamp.
        exclude: services never nominated (e.g. the front-end).
        concurrency_family / rate_family / utilization_family /
        allocation_family / time_family: OpenMetrics family names the
            snapshot adapter reads. Concurrency and rate are required;
            utilization, allocation, and the logical-clock family are
            optional enrichments.
        service_label: label key identifying the service on each
            sample.
        latency_slo: controller-on-controller objective — the wall
            seconds one recommendation may take; compliance is tracked
            by the service's own SLO monitor and exported over
            OpenMetrics.
        flight_rounds: control rounds the self-tracing flight recorder
            retains as span trees (served via ``/debug/rounds``);
            ``0`` disables self-tracing entirely — the control path
            then carries only a single truthiness check and decision
            records are byte-identical either way.
        scatter: SCG scatter-model tuning (degree range, minimum
            evidence, knee quality).
    """

    sla: float = 0.4
    floor_fraction: float = 0.1
    utilization_threshold: float = 0.7
    cadence: float = 15.0
    window: float = 120.0
    trace_window: int = 512
    max_pending: int = 256
    max_series: int = 4096
    decide_top_k: int = 1
    min_allocation: int = 1
    max_allocation: int = 512
    exclude: tuple[str, ...] = ()
    concurrency_family: str = "sora_concurrency"
    rate_family: str = "sora_goodput"
    utilization_family: str = "sora_utilization"
    allocation_family: str = "sora_allocation"
    time_family: str = "sora_now"
    service_label: str = "service"
    latency_slo: float = 0.25
    flight_rounds: int = 256
    scatter: ScatterModelConfig = field(default_factory=_default_scatter)

    def __post_init__(self) -> None:
        if self.sla <= 0:
            raise ValueError(f"sla must be positive, got {self.sla}")
        if self.cadence <= 0:
            raise ValueError(
                f"cadence must be positive, got {self.cadence}")
        if self.window <= 0:
            raise ValueError(
                f"window must be positive, got {self.window}")
        if self.trace_window < 1:
            raise ValueError(
                f"trace_window must be >= 1, got {self.trace_window}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_series < 1:
            raise ValueError(
                f"max_series must be >= 1, got {self.max_series}")
        if self.decide_top_k < 0:
            raise ValueError(
                f"decide_top_k must be >= 0, got {self.decide_top_k}")
        if not 1 <= self.min_allocation <= self.max_allocation:
            raise ValueError(
                f"need 1 <= min_allocation <= max_allocation, got "
                f"[{self.min_allocation}, {self.max_allocation}]")
        if self.latency_slo <= 0:
            raise ValueError(
                f"latency_slo must be positive, got {self.latency_slo}")
        if self.flight_rounds < 0:
            raise ValueError(
                f"flight_rounds must be >= 0, got {self.flight_rounds}")

    def to_dict(self) -> dict:
        """JSON-ready view for the ``/config`` endpoint."""
        return {
            "sla": self.sla,
            "floor_fraction": self.floor_fraction,
            "utilization_threshold": self.utilization_threshold,
            "cadence": self.cadence,
            "window": self.window,
            "trace_window": self.trace_window,
            "max_pending": self.max_pending,
            "max_series": self.max_series,
            "decide_top_k": self.decide_top_k,
            "min_allocation": self.min_allocation,
            "max_allocation": self.max_allocation,
            "exclude": list(self.exclude),
            "families": {
                "concurrency": self.concurrency_family,
                "rate": self.rate_family,
                "utilization": self.utilization_family,
                "allocation": self.allocation_family,
                "time": self.time_family,
            },
            "service_label": self.service_label,
            "latency_slo": self.latency_slo,
            "flight_rounds": self.flight_rounds,
            "scatter": {
                "min_degree": self.scatter.min_degree,
                "max_degree": self.scatter.max_degree,
                "min_samples": self.scatter.min_samples,
                "min_distinct": self.scatter.min_distinct,
                "quantum": self.scatter.quantum,
                "knee_quality": self.scatter.knee_quality,
            },
        }


class SeriesState:
    """Bounded streaming state for one monitored service.

    Ingested snapshots append one ``<concurrency, goodput>`` pair each;
    the control plane reads the trailing window back as arrays for the
    scatter model. Retention is value-bounded by the underlying
    :class:`~repro.metrics.sampler.TimeSeries` ring and time-bounded by
    :meth:`prune`.
    """

    __slots__ = ("name", "concurrency", "rate", "utilization",
                 "allocation", "snapshots", "updated")

    def __init__(self, name: str) -> None:
        self.name = name
        self.concurrency = TimeSeries()
        self.rate = TimeSeries()
        #: Latest utilization fraction reading (screening input).
        self.utilization: float | None = None
        #: Latest reported pool size, when the source exports one.
        self.allocation: int | None = None
        self.snapshots = 0
        self.updated = 0.0

    def observe(self, time: float, concurrency: float, rate: float,
                utilization: float | None = None,
                allocation: float | None = None) -> None:
        """Fold one snapshot's readings for this service."""
        self.concurrency.append(time, float(concurrency))
        self.rate.append(time, float(rate))
        if utilization is not None:
            self.utilization = float(utilization)
        if allocation is not None:
            self.allocation = max(1, int(round(allocation)))
        self.snapshots += 1
        self.updated = time

    def pairs(self, since: float = 0.0
              ) -> tuple[np.ndarray, np.ndarray]:
        """``(Q, GP)`` arrays observed at or after ``since``."""
        _t1, concurrency = self.concurrency.window(since)
        _t2, rate = self.rate.window(since)
        size = min(len(concurrency), len(rate))
        return concurrency[:size], rate[:size]

    def prune(self, before: float) -> None:
        """Drop pairs older than ``before``."""
        self.concurrency.prune(before)
        self.rate.prune(before)

    def state_dict(self) -> dict:
        """Exact streaming state for journal checkpoint compaction."""
        return {
            "concurrency": self.concurrency.state_dict(),
            "rate": self.rate.state_dict(),
            "utilization": self.utilization,
            "allocation": self.allocation,
            "snapshots": self.snapshots,
            "updated": self.updated,
        }

    @classmethod
    def from_state(cls, name: str, state: dict) -> "SeriesState":
        """Inverse of :meth:`state_dict`."""
        series = cls(name)
        series.concurrency = TimeSeries.from_state(state["concurrency"])
        series.rate = TimeSeries.from_state(state["rate"])
        series.utilization = state["utilization"]
        series.allocation = state["allocation"]
        series.snapshots = int(state["snapshots"])
        series.updated = float(state["updated"])
        return series


@dataclass(frozen=True)
class Recommendation:
    """One soft-resource recommendation served over the JSON API.

    Attributes:
        service: the monitored service the verdict applies to.
        allocation: recommended per-replica pool size (clamped to the
            configured bounds).
        before: the allocation in force when the round ran (reported
            by the source, or the previous recommendation).
        method: estimate provenance ("knee" or "argmax").
        threshold: propagated RT threshold the goodput window was
            judged against.
        round / time: control round ordinal and logical time.
        samples / max_concurrency / poly_degree / fit_r2 /
        knee_concurrency / knee_rate: estimate diagnostics mirroring
            :class:`~repro.core.scg.ConcurrencyEstimate`, for the
            explainability report.
    """

    service: str
    allocation: int
    before: int
    method: str
    threshold: float
    round: int
    time: float
    samples: int
    max_concurrency: float
    poly_degree: int | None = None
    fit_r2: float | None = None
    knee_concurrency: float | None = None
    knee_rate: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready recommendation body."""
        payload: dict[str, _t.Any] = {
            "service": self.service,
            "allocation": self.allocation,
            "before": self.before,
            "method": self.method,
            "threshold": round(self.threshold, 6),
            "round": self.round,
            "time": self.time,
            "samples": self.samples,
            "max_concurrency": round(self.max_concurrency, 3),
        }
        if self.poly_degree is not None:
            payload["poly_degree"] = self.poly_degree
        if self.fit_r2 is not None and np.isfinite(self.fit_r2):
            payload["fit_r2"] = round(self.fit_r2, 4)
        if self.knee_concurrency is not None:
            payload["knee_concurrency"] = round(self.knee_concurrency, 3)
        if self.knee_rate is not None:
            payload["knee_rate"] = round(self.knee_rate, 3)
        return payload
