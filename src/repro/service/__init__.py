"""``repro.service``: Sora as a standalone control-plane service.

The paper's pipeline — critical-service localization, latency-deadline
propagation, SCG-based soft-resource estimation — packaged as a
long-lived asyncio service any system can point telemetry at, with
clean layering:

- **domain** (:mod:`repro.service.domain`) — config, per-series
  streaming state, recommendations, the typed ingest-error taxonomy;
- **adapters** (:mod:`repro.service.ingest`) — strict OpenMetrics
  snapshots and Jaeger-shaped trace batches in, domain observations
  out;
- **application** (:mod:`repro.service.control`) — the online
  localization → propagation → estimation loop over streaming state,
  emitting typed decision records with SLOs on the controller itself;
- **infrastructure** (:mod:`repro.service.api`,
  :mod:`repro.service.audit`) — the stdlib-asyncio HTTP JSON API plus
  JSONL journal/decision persistence with byte-exact audit replay,
  segment rotation, tamper chaining, and checkpoint compaction;
- **observability of the observer** (:mod:`repro.service.flight`,
  :mod:`repro.service.console`) — the flight recorder that self-traces
  every control round and the live ops console that serves it;
- **driver** (:mod:`repro.service.driver`) — the DES simulator as an
  external load generator, closing the loop over real sockets.

CLI entry points: ``repro serve`` boots the service,
``repro service drive`` points the simulator at it,
``repro service replay`` re-derives the decision log from the journal
and verifies byte-identity.
"""

from repro.service.api import ControllerService
from repro.service.audit import (
    AuditJournal,
    JournalEntry,
    journal_segments,
    read_journal,
    replay_journal,
    verify_chain,
    verify_replay,
)
from repro.service.console import render_service_dashboard
from repro.service.control import ControlPlane
from repro.service.domain import (
    IngestError,
    Recommendation,
    SeriesState,
    ServiceConfig,
)
from repro.service.driver import (
    DriveReport,
    ServiceClient,
    drive,
    render_snapshot,
)
from repro.service.flight import FlightRecorder
from repro.service.ingest import (
    MetricsSnapshot,
    SeriesSample,
    parse_metrics_snapshot,
    parse_trace_batch,
)

__all__ = [
    "AuditJournal",
    "ControlPlane",
    "ControllerService",
    "DriveReport",
    "FlightRecorder",
    "IngestError",
    "JournalEntry",
    "MetricsSnapshot",
    "Recommendation",
    "SeriesSample",
    "SeriesState",
    "ServiceClient",
    "ServiceConfig",
    "drive",
    "journal_segments",
    "parse_metrics_snapshot",
    "parse_trace_batch",
    "read_journal",
    "render_service_dashboard",
    "render_snapshot",
    "replay_journal",
    "verify_chain",
    "verify_replay",
]
