"""Live ops console: the service's own dashboard, served over HTTP.

``GET /debug/dashboard`` renders one self-contained HTML page — no
external scripts, stylesheets, or fonts, the same contract
``tools/check_links.py --html`` enforces on every other generated
report — by reusing the simulator dashboard's chrome
(:func:`repro.obs.dashboard.render_dashboard_html` with its
``extra_html`` hook) and appending four service-specific sections:

- **round latency** — a sparkline of flight-recorded wall ms per
  control round;
- **per-phase flame strips** — one stacked bar per recent round,
  segmented by pipeline phase, linking each strip to its
  ``/debug/rounds/{id}`` span tree;
- **ingest backpressure** — pending-vs-capacity, rejected ingests,
  accepted snapshot/trace totals;
- **journal health** — segments, active bytes, rotation/compaction
  counts, and the tamper-chain head.

Early in a run the plane's timeline may be empty (the base renderer
raises ``ValueError``); the console then falls back to a minimal page
carrying just the service sections, so the endpoint never 500s while
warming up.
"""

from __future__ import annotations

import html as _html
import typing as _t

from repro.obs.dashboard import _CSS, _panel_svg, render_dashboard_html

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.service.audit import AuditJournal
    from repro.service.control import ControlPlane

__all__ = ["render_service_dashboard"]

#: Phase → color, pipeline order (colorblind-safe Set2-ish palette).
_PHASE_COLORS = (
    ("ingest", "#8da0cb"),
    ("localization", "#66c2a5"),
    ("deadline_propagation", "#fc8d62"),
    ("scg_estimation", "#e78ac3"),
    ("decision", "#a6d854"),
)

#: Flame strips drawn on the console (newest rounds).
_STRIP_ROUNDS = 24


def _latency_panel(flight) -> str:
    points = [(float(ordinal), wall)
              for ordinal, wall in flight.latest_wall_ms()]
    t_lo = points[0][0]
    t_hi = max(points[-1][0], t_lo + 1.0)
    return _panel_svg("round wall [ms]", points, t_lo, t_hi, ())


def _flame_strips(summaries: list[dict]) -> str:
    """Stacked per-phase bars, one row per recent round."""
    recent = summaries[-_STRIP_ROUNDS:]
    scale_ms = max(
        (sum(entry["phase_ms"].values()) for entry in recent),
        default=0.0) or 1.0
    row_h, gap, label_w, plot_w = 18, 6, 90, 560
    height = (row_h + gap) * len(recent) + 10
    parts = [
        f'<svg width="{label_w + plot_w + 10}" height="{height}">']
    for row, entry in enumerate(recent):
        y = 5 + row * (row_h + gap)
        total = sum(entry["phase_ms"].values())
        parts.append(
            f'<text x="4" y="{y + row_h - 5}" class="axis">'
            f'round {entry["round"]} · {total:.2f}ms</text>')
        x = float(label_w)
        for phase, color in _PHASE_COLORS:
            span_ms = entry["phase_ms"].get(phase, 0.0)
            width = plot_w * span_ms / scale_ms
            if width <= 0.0:
                continue
            title = (f'round {entry["round"]} {phase}: '
                     f'{span_ms:.3f}ms — see '
                     f'/debug/rounds/{entry["round"]}')
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(width, 1.0):.1f}"'
                f' height="{row_h}" fill="{color}">'
                f'<title>{_html.escape(title)}</title></rect>')
            x += max(width, 1.0)
    parts.append("</svg>")
    legend = " ".join(
        f"<label class='toggle'><span class='swatch' "
        f"style='background:{color}'></span>{phase}</label>"
        for phase, color in _PHASE_COLORS)
    return f"<p class='legend'>{legend}</p>" + "".join(parts)


def _key_value_table(rows: _t.Sequence[tuple[str, _t.Any]]) -> str:
    body = "".join(
        f"<tr><td>{_html.escape(key)}</td>"
        f"<td>{_html.escape(str(value))}</td></tr>"
        for key, value in rows)
    return (f"<table><tbody>{body}</tbody></table>")


def render_flight_sections(plane: "ControlPlane",
                           journal: "AuditJournal") -> str:
    """The service-specific console sections (self-contained HTML)."""
    parts: list[str] = []
    flight = plane.flight
    parts.append("<h2>Control-round latency (self-trace)</h2>")
    if flight and len(flight):
        summaries = flight.summaries()
        parts.append(
            f"<p class='summary'>{flight.rounds_recorded} rounds "
            f"recorded · {len(flight)} retained "
            f"(capacity {flight.max_rounds}) · per-round span trees "
            f"at <code>/debug/rounds/&lt;round&gt;</code></p>")
        parts.append(_latency_panel(flight))
        parts.append("<h2>Per-phase flame strips</h2>")
        parts.append(_flame_strips(summaries))
    else:
        parts.append(
            "<p class='summary'>flight recorder "
            + ("has no rounds yet" if flight else
               "disabled (flight_rounds=0)") + "</p>")

    cfg = plane.config
    rejected = plane.obs.registry.counter("service.rejected").value
    parts.append("<h2>Ingest backpressure</h2>")
    parts.append(_key_value_table([
        ("pending snapshots", f"{plane.pending} / {cfg.max_pending}"),
        ("rejected ingests", int(rejected)),
        ("snapshots accepted", plane.snapshots_ingested),
        ("traces accepted", plane.traces_ingested),
        ("tracked series", len(plane._series)),
    ]))

    health = journal.health()
    parts.append("<h2>Journal health</h2>")
    parts.append(_key_value_table([
        ("segments", health["segments"]),
        ("active bytes", health["active_bytes"]),
        ("active entries", health["active_entries"]),
        ("rotations", health["rotations"]),
        ("compactions", health["compactions"]),
        ("entries dropped by compaction", health["entries_dropped"]),
        ("rotate at bytes", health["segment_bytes"] or "disabled"),
        ("rotate at logical age [s]",
         health["segment_age"] or "disabled"),
        ("chain head", health["chain_head"] or "(empty)"),
    ]))
    return "".join(parts)


def render_service_dashboard(plane: "ControlPlane",
                             journal: "AuditJournal", *,
                             title: str = "sora-service") -> str:
    """The full live ops console page."""
    sections = render_flight_sections(plane, journal)
    try:
        return render_dashboard_html(plane.obs, title=title,
                                     extra_html=sections)
    except ValueError:
        # Nothing on the timeline yet (no recommendations recorded):
        # serve the service sections on their own, same chrome.
        safe = _html.escape(title)
        return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
                f"<title>ops console — {safe}</title>"
                f"<style>{_CSS}</style></head><body>"
                f"<h1>ops console — {safe}</h1>"
                f"{sections}</body></html>")
