"""Audit journal: persisted stimuli, byte-exact decision replay.

The service's explainability story rests on two JSONL artifacts:

- the **decision log** (``DecisionLog.to_jsonl``) — *what* the
  controller concluded each round;
- the **journal** (this module) — *everything the controller was
  told*: every accepted metrics snapshot, every accepted trace batch,
  and every control tick with the logical time it ran at.

Because :class:`~repro.service.control.ControlPlane` derives all state
from those stimuli alone (wall clocks never touch the decision
records), feeding the journal back through a fresh plane reproduces
the decision JSONL byte-for-byte. :func:`verify_replay` performs that
check — the service-layer analogue of the simulator's deterministic
replay gate.

Rejected payloads are deliberately *not* journaled: they changed no
state, so replaying only accepted stimuli is sufficient for identity.

Long-running services add two lifecycle concerns the seed journal
ignored, both handled here without weakening the replay contract:

**Rotation.** With ``segment_bytes`` / ``segment_age`` set, the active
file is closed and renamed to a numbered segment
(``journal.00001.jsonl``, ``journal.00002.jsonl``, …) once it exceeds
the size or logical-time-span threshold; :func:`read_journal` on the
base path stitches the segments back together in order. Every line
carries a ``chain`` field — SHA-256 over the previous line's chain
plus the line's canonical JSON — and the chain runs *across* segment
boundaries, so :func:`verify_chain` catches a tampered or truncated
line even when the edit and its successor live in different files.

**Compaction.** With ``compact=True``, each rotation collapses all
closed segments into a single ``"checkpoint"`` entry: the plane's
exact decision-relevant state (:meth:`ControlPlane.checkpoint`) plus
every decision line persisted so far, verbatim. Raw per-series
snapshots are superseded by the state they produced; decisions are
never dropped. Replay restores the checkpoint onto a fresh plane and
replays only the tail — the result is byte-identical to replaying the
uncompacted stream, because the checkpoint state is exact (JSON
round-trips Python floats bit-exactly). A checkpoint line is a new
chain genesis, which is what makes unlinking its predecessors sound.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing as _t
from dataclasses import dataclass

from repro.service.control import ControlPlane
from repro.service.domain import ServiceConfig

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.registry import Registry

__all__ = [
    "AuditJournal",
    "JournalEntry",
    "journal_segments",
    "read_journal",
    "replay_journal",
    "verify_chain",
    "verify_replay",
]

#: Stimulus kinds a journal records (``checkpoint`` lines are written
#: by compaction, never by the live ingest path).
EntryKind = _t.Literal["metrics", "traces", "tick", "checkpoint"]


@dataclass(frozen=True)
class JournalEntry:
    """One persisted stimulus.

    Attributes:
        kind: ``"metrics"`` / ``"traces"`` (accepted ingests, body
            preserved verbatim), ``"tick"`` (control round), or
            ``"checkpoint"`` (compaction artifact; the body is a JSON
            document with ``state`` and ``decisions`` keys).
        time: the logical time the plane resolved for the stimulus —
            replay passes it back explicitly so wall-clock-cadenced
            ticks stay reproducible.
        body: the raw payload for ingests/checkpoints; ``None`` for
            ticks.
    """

    kind: EntryKind
    time: float
    body: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready journal line (without the tamper chain)."""
        payload: dict[str, _t.Any] = {"kind": self.kind,
                                      "time": self.time}
        if self.body is not None:
            payload["body"] = self.body
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalEntry":
        """Inverse of :meth:`to_dict` (a ``chain`` key is ignored)."""
        kind = payload["kind"]
        if kind not in ("metrics", "traces", "tick", "checkpoint"):
            raise ValueError(f"unknown journal entry kind {kind!r}")
        return cls(kind=kind, time=float(payload["time"]),
                   body=payload.get("body"))


def _chain_hash(previous: str, canonical: str) -> str:
    """One tamper-chain link: SHA-256 over predecessor + payload."""
    return hashlib.sha256(
        (previous + canonical).encode("utf-8")).hexdigest()


def journal_segments(path: str | pathlib.Path) -> list[pathlib.Path]:
    """Closed segments for a journal base path, oldest first."""
    base = pathlib.Path(path)
    prefix = base.stem + "."
    segments = []
    if base.parent.is_dir():
        for candidate in base.parent.iterdir():
            if (candidate.suffix == base.suffix
                    and candidate.name.startswith(prefix)):
                ordinal = candidate.name[len(prefix):-len(base.suffix)
                                         or None]
                if ordinal and ordinal.isdigit():
                    segments.append((int(ordinal), candidate))
    return [candidate for _ordinal, candidate in sorted(segments)]


class AuditJournal:
    """Append-only JSONL journal of accepted stimuli.

    Args:
        path: journal base file (parent directories are created);
            ``None`` journals into memory only — useful for tests and
            for serving without persistence.
        segment_bytes: rotate the active file into a numbered segment
            once it holds at least this many bytes (``0`` disables
            size-based rotation).
        segment_age: rotate once the active segment's entries span at
            least this many seconds of *logical* time (``0`` disables
            age-based rotation; logical age keeps rotation — like
            everything else in the replay contract — independent of
            wall clocks).
        compact: collapse closed segments into a single checkpoint
            entry after each rotation (requires
            ``checkpoint_provider``).
        checkpoint_provider: zero-argument callable returning
            ``(state, decision_lines)`` — the plane's
            :meth:`~repro.service.control.ControlPlane.checkpoint`
            and the decision JSONL lines persisted so far.
        registry: optional metrics registry for rotation/compaction
            counters (``journal.rotations``, ``journal.compactions``,
            ``journal.entries.dropped``, ``journal.segments``,
            ``journal.active.bytes``).
    """

    def __init__(self, path: str | pathlib.Path | None = None, *,
                 segment_bytes: int = 0, segment_age: float = 0.0,
                 compact: bool = False,
                 checkpoint_provider: _t.Callable[
                     [], tuple[dict, list[str]]] | None = None,
                 registry: "Registry | None" = None) -> None:
        if segment_bytes < 0:
            raise ValueError(
                f"segment_bytes must be >= 0, got {segment_bytes}")
        if segment_age < 0:
            raise ValueError(
                f"segment_age must be >= 0, got {segment_age}")
        if compact and checkpoint_provider is None:
            raise ValueError(
                "compact=True requires a checkpoint_provider")
        self.path = pathlib.Path(path) if path is not None else None
        self.segment_bytes = segment_bytes
        self.segment_age = segment_age
        self.compact = compact
        self.checkpoint_provider = checkpoint_provider
        self.entries: list[JournalEntry] = []
        self.rotations = 0
        self.compactions = 0
        self.entries_dropped = 0
        self._registry = registry
        self._chain = ""
        self._segment_index = 0
        self._closed_count = 0
        self._active_bytes = 0
        self._active_entries = 0
        self._active_start: float | None = None
        self._active_end = 0.0
        self._handle: _t.TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._publish()

    @property
    def chain_head(self) -> str:
        """The most recent chain hash ("" before the first entry)."""
        return self._chain

    def record(self, kind: EntryKind, time: float,
               body: str | None = None) -> JournalEntry:
        """Persist one accepted stimulus (flushed immediately).

        Rotation (and compaction, when enabled) runs *after* the entry
        is written: the caller journals each stimulus only after the
        plane accepted it, so a checkpoint cut here reflects exactly
        the entries 1..N it replaces.
        """
        entry = JournalEntry(kind=kind, time=time, body=body)
        self.entries.append(entry)
        if self._handle is not None:
            self._write(entry)
            self._maybe_rotate()
            self._publish()
        return entry

    def _write(self, entry: JournalEntry) -> None:
        canonical = json.dumps(entry.to_dict(), sort_keys=True)
        self._chain = _chain_hash(self._chain, canonical)
        line = json.dumps({**entry.to_dict(), "chain": self._chain},
                          sort_keys=True)
        handle = _t.cast(_t.TextIO, self._handle)
        handle.write(line + "\n")
        handle.flush()
        self._active_bytes += len(line.encode("utf-8")) + 1
        self._active_entries += 1
        if self._active_start is None:
            self._active_start = entry.time
        self._active_end = entry.time

    def _maybe_rotate(self) -> None:
        if self._active_entries == 0:
            return
        size_due = (self.segment_bytes > 0
                    and self._active_bytes >= self.segment_bytes)
        start = self._active_start
        age_due = (self.segment_age > 0 and start is not None
                   and self._active_end - start >= self.segment_age)
        if size_due or age_due:
            self.rotate()

    def _segment_path(self, index: int) -> pathlib.Path:
        base = _t.cast(pathlib.Path, self.path)
        return base.with_name(
            f"{base.stem}.{index:05d}{base.suffix}")

    def rotate(self) -> pathlib.Path | None:
        """Close the active file into the next numbered segment.

        The tamper chain continues uninterrupted into the fresh active
        file, so a byte flipped in a closed segment still invalidates
        every line after it. Returns the new segment's path (``None``
        for in-memory journals or an empty active file). Compaction,
        when enabled, runs immediately after — the only moment the
        active file is empty, so it never needs rewriting.
        """
        if self._handle is None or self._active_entries == 0:
            return None
        self._handle.close()
        self._segment_index += 1
        segment = self._segment_path(self._segment_index)
        _t.cast(pathlib.Path, self.path).rename(segment)
        self._handle = _t.cast(pathlib.Path, self.path).open(
            "w", encoding="utf-8")
        self._active_bytes = 0
        self._active_entries = 0
        self._active_start = None
        self.rotations += 1
        self._closed_count += 1
        if self.compact:
            self._compact()
        self._publish()
        return segment

    def _compact(self) -> None:
        """Collapse every closed segment into one checkpoint segment.

        Writes the checkpoint as the *next* numbered segment first,
        then unlinks its predecessors: replay always restores from the
        newest checkpoint and skips everything before it, so a crash
        between the two steps leaves stale-but-ignored segments rather
        than a journal that double-applies compacted entries.
        """
        provider = _t.cast(
            _t.Callable[[], tuple[dict, list[str]]],
            self.checkpoint_provider)
        state, decision_lines = provider()
        body = json.dumps(
            {"state": state,
             "decisions": [line for line in decision_lines if line]},
            sort_keys=True)
        entry = JournalEntry(kind="checkpoint",
                             time=float(state["now"]), body=body)
        superseded = journal_segments(_t.cast(pathlib.Path, self.path))
        self._segment_index += 1
        segment = self._segment_path(self._segment_index)
        canonical = json.dumps(entry.to_dict(), sort_keys=True)
        chain = _chain_hash("", canonical)  # checkpoint = new genesis
        line = json.dumps({**entry.to_dict(), "chain": chain},
                          sort_keys=True)
        temporary = segment.with_name(segment.name + ".tmp")
        temporary.write_text(line + "\n", encoding="utf-8")
        temporary.replace(segment)
        for stale in superseded:
            stale.unlink()
        self.entries_dropped += len(self.entries)
        self.entries = [entry]
        self._chain = chain
        self._closed_count = 1
        self.compactions += 1

    def _publish(self) -> None:
        """Refresh the registry's journal health instruments."""
        registry = self._registry
        if registry is None:
            return
        registry.gauge("journal.active.bytes").set(
            float(self._active_bytes))
        registry.gauge("journal.segments").set(
            float(self._closed_count + 1))
        for name, value in (("journal.rotations", self.rotations),
                            ("journal.compactions", self.compactions),
                            ("journal.entries.dropped",
                             self.entries_dropped)):
            counter = registry.counter(name)
            counter.inc(value - counter.value)

    def health(self) -> dict:
        """JSON-ready lifecycle summary (served on the dashboard)."""
        closed = (journal_segments(self.path)
                  if self.path is not None else [])
        return {
            "path": str(self.path) if self.path is not None else None,
            "segments": len(closed) + 1,
            "active_bytes": self._active_bytes,
            "active_entries": self._active_entries,
            "rotations": self.rotations,
            "compactions": self.compactions,
            "entries_dropped": self.entries_dropped,
            "segment_bytes": self.segment_bytes,
            "segment_age": self.segment_age,
            "compact": self.compact,
            "chain_head": self._chain[:16] if self._chain else None,
        }

    def close(self) -> None:
        """Close the backing file, if any (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self.entries)


def _journal_files(path: str | pathlib.Path) -> list[pathlib.Path]:
    """Closed segments plus the active file, in replay order."""
    base = pathlib.Path(path)
    files = journal_segments(base)
    if base.exists():
        files.append(base)
    return files


def read_journal(path: str | pathlib.Path) -> list[JournalEntry]:
    """Parse a journal (all segments + active file) back into entries.

    Accepts both segmented journals (pass the base path) and plain
    single-file journals, chained or legacy chainless.
    """
    files = _journal_files(path)
    if not files:
        raise FileNotFoundError(f"no journal at {path}")
    entries = []
    for file in files:
        for line in file.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                entries.append(JournalEntry.from_dict(json.loads(line)))
    return entries


def verify_chain(path: str | pathlib.Path) -> tuple[bool, str]:
    """Walk a journal's tamper chain across every segment.

    Each line's ``chain`` must equal SHA-256 over the previous line's
    chain concatenated with the line's canonical JSON (sans ``chain``);
    checkpoint lines restart the chain from genesis. Returns
    ``(ok, detail)`` where ``detail`` names the first broken line.
    """
    previous = ""
    checked = 0
    for file in _journal_files(path):
        for number, line in enumerate(
                file.read_text(encoding="utf-8").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            stored = payload.pop("chain", None)
            if stored is None:
                return False, (f"{file.name}:{number}: missing chain "
                               f"field (legacy or stripped journal)")
            if payload.get("kind") == "checkpoint":
                previous = ""
            expected = _chain_hash(
                previous, json.dumps(payload, sort_keys=True))
            if stored != expected:
                return False, (
                    f"{file.name}:{number}: chain mismatch "
                    f"(stored {stored[:16]}…, expected "
                    f"{expected[:16]}…)")
            previous = expected
            checked += 1
    return True, f"chain intact over {checked} entries"


def replay_journal(entries: _t.Iterable[JournalEntry],
                   config: ServiceConfig | None = None,
                   max_records: int = 4096) -> ControlPlane:
    """Feed journaled stimuli through a fresh control plane.

    The configuration must match the one the journal was recorded
    under (the ``serve`` CLI persists it alongside the journal for
    exactly this reason). A ``checkpoint`` entry restores its exact
    state onto a *fresh* plane and seeds the preserved decision lines,
    superseding everything before it — which is also what makes a
    crash-interrupted compaction harmless.
    """
    plane = ControlPlane(config, max_records=max_records)
    for entry in entries:
        if entry.kind == "checkpoint":
            payload = json.loads(_t.cast(str, entry.body))
            plane = ControlPlane(config, max_records=max_records)
            plane.restore(payload["state"])
            plane.seed_decisions(payload["decisions"])
        elif entry.kind == "metrics":
            plane.ingest_metrics(_t.cast(str, entry.body))
        elif entry.kind == "traces":
            plane.ingest_traces(_t.cast(str, entry.body))
        else:
            plane.tick(now=entry.time)
    return plane


def verify_replay(journal_path: str | pathlib.Path,
                  decisions_path: str | pathlib.Path,
                  config: ServiceConfig | None = None,
                  max_records: int = 4096) -> tuple[bool, str]:
    """Replay a journal and byte-compare against persisted decisions.

    Returns ``(identical, detail)`` where ``detail`` names the first
    divergent line on mismatch.
    """
    plane = replay_journal(read_journal(journal_path), config,
                           max_records=max_records)
    replayed = plane.decisions_jsonl()
    persisted = pathlib.Path(decisions_path).read_text(
        encoding="utf-8")
    if replayed == persisted:
        records = len(replayed.splitlines())
        return True, (f"replay of {records} records "
                      f"is byte-identical")
    replay_lines = replayed.splitlines()
    disk_lines = persisted.splitlines()
    for index, (a, b) in enumerate(zip(replay_lines, disk_lines)):
        if a != b:
            return False, (f"first divergence at line {index + 1}:\n"
                           f"  replay:    {a[:120]}\n"
                           f"  persisted: {b[:120]}")
    return False, (f"length mismatch: replay {len(replay_lines)} "
                   f"lines vs persisted {len(disk_lines)}")
