"""Audit journal: persisted stimuli, byte-exact decision replay.

The service's explainability story rests on two JSONL artifacts:

- the **decision log** (``DecisionLog.to_jsonl``) — *what* the
  controller concluded each round;
- the **journal** (this module) — *everything the controller was
  told*: every accepted metrics snapshot, every accepted trace batch,
  and every control tick with the logical time it ran at.

Because :class:`~repro.service.control.ControlPlane` derives all state
from those stimuli alone (wall clocks never touch the decision
records), feeding the journal back through a fresh plane reproduces
the decision JSONL byte-for-byte. :func:`verify_replay` performs that
check — the service-layer analogue of the simulator's deterministic
replay gate.

Rejected payloads are deliberately *not* journaled: they changed no
state, so replaying only accepted stimuli is sufficient for identity.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t
from dataclasses import dataclass

from repro.service.control import ControlPlane
from repro.service.domain import ServiceConfig

__all__ = [
    "AuditJournal",
    "JournalEntry",
    "read_journal",
    "replay_journal",
    "verify_replay",
]

#: Stimulus kinds a journal records.
EntryKind = _t.Literal["metrics", "traces", "tick"]


@dataclass(frozen=True)
class JournalEntry:
    """One persisted stimulus.

    Attributes:
        kind: ``"metrics"`` / ``"traces"`` (accepted ingests, body
            preserved verbatim) or ``"tick"`` (control round).
        time: the logical time the plane resolved for the stimulus —
            replay passes it back explicitly so wall-clock-cadenced
            ticks stay reproducible.
        body: the raw payload for ingests; ``None`` for ticks.
    """

    kind: EntryKind
    time: float
    body: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready journal line."""
        payload: dict[str, _t.Any] = {"kind": self.kind,
                                      "time": self.time}
        if self.body is not None:
            payload["body"] = self.body
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalEntry":
        """Inverse of :meth:`to_dict`."""
        kind = payload["kind"]
        if kind not in ("metrics", "traces", "tick"):
            raise ValueError(f"unknown journal entry kind {kind!r}")
        return cls(kind=kind, time=float(payload["time"]),
                   body=payload.get("body"))


class AuditJournal:
    """Append-only JSONL journal of accepted stimuli.

    Args:
        path: journal file (parent directories are created); ``None``
            journals into memory only — useful for tests and for
            serving without persistence.
    """

    def __init__(self, path: str | pathlib.Path | None = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.entries: list[JournalEntry] = []
        self._handle: _t.TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")

    def record(self, kind: EntryKind, time: float,
               body: str | None = None) -> JournalEntry:
        """Persist one accepted stimulus (flushed immediately)."""
        entry = JournalEntry(kind=kind, time=time, body=body)
        self.entries.append(entry)
        if self._handle is not None:
            self._handle.write(
                json.dumps(entry.to_dict(), sort_keys=True) + "\n")
            self._handle.flush()
        return entry

    def close(self) -> None:
        """Close the backing file, if any (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        return len(self.entries)


def read_journal(path: str | pathlib.Path) -> list[JournalEntry]:
    """Parse a journal file back into entries."""
    entries = []
    for line in pathlib.Path(path).read_text(
            encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(JournalEntry.from_dict(json.loads(line)))
    return entries


def replay_journal(entries: _t.Iterable[JournalEntry],
                   config: ServiceConfig | None = None,
                   max_records: int = 4096) -> ControlPlane:
    """Feed journaled stimuli through a fresh control plane.

    The configuration must match the one the journal was recorded
    under (the ``serve`` CLI persists it alongside the journal for
    exactly this reason).
    """
    plane = ControlPlane(config, max_records=max_records)
    for entry in entries:
        if entry.kind == "metrics":
            plane.ingest_metrics(_t.cast(str, entry.body))
        elif entry.kind == "traces":
            plane.ingest_traces(_t.cast(str, entry.body))
        else:
            plane.tick(now=entry.time)
    return plane


def verify_replay(journal_path: str | pathlib.Path,
                  decisions_path: str | pathlib.Path,
                  config: ServiceConfig | None = None,
                  max_records: int = 4096) -> tuple[bool, str]:
    """Replay a journal and byte-compare against persisted decisions.

    Returns ``(identical, detail)`` where ``detail`` names the first
    divergent line on mismatch.
    """
    plane = replay_journal(read_journal(journal_path), config,
                           max_records=max_records)
    replayed = plane.decisions_jsonl()
    persisted = pathlib.Path(decisions_path).read_text(
        encoding="utf-8")
    if replayed == persisted:
        return True, (f"replay of {len(plane.obs.decisions)} records "
                      f"is byte-identical")
    replay_lines = replayed.splitlines()
    disk_lines = persisted.splitlines()
    for index, (a, b) in enumerate(zip(replay_lines, disk_lines)):
        if a != b:
            return False, (f"first divergence at line {index + 1}:\n"
                           f"  replay:    {a[:120]}\n"
                           f"  persisted: {b[:120]}")
    return False, (f"length mismatch: replay {len(replay_lines)} "
                   f"lines vs persisted {len(disk_lines)}")
