"""Flight recorder: the control plane traces itself.

Sora's pitch is that the analysis is cheap enough to run online; this
module makes that claim inspectable per round instead of aggregate.
Every control round is recorded as a span tree — ingest →
localization → deadline propagation → SCG estimation → decision —
built from the same :class:`~repro.tracing.span.Span` type the
service *consumes*, so the controller can be examined with the exact
tooling it points at everything else: the Jaeger-shaped export from
``/debug/rounds/{id}`` round-trips through
:func:`repro.tracing.export.traces_from_jaeger`.

Design constraints, in order:

1. **Replay neutrality.** The recorder reads wall clocks, and wall
   clocks never touch decision records; enabling or disabling the
   recorder leaves the decision JSONL byte-identical (the
   ``service_selftrace`` bench asserts this).
2. **Bounded.** Rounds live in a ring of ``flight_rounds`` entries;
   pre-round ingest timings in a bounded scratch deque. Memory is
   O(flight_rounds × decided services).
3. **Zero cost when off.** ``flight_rounds=0`` leaves exactly one
   truthiness check on each hot path (the same pattern as the
   simulator's ``if self.obs:`` guards).

All span timestamps are quantized to whole microseconds *before* the
spans are built, so the Jaeger export (which serializes microseconds)
is a fixed point under export → import → export.
"""

from __future__ import annotations

import time as _time
import typing as _t
from collections import deque

from repro.tracing.export import trace_to_jaeger
from repro.tracing.span import Span

__all__ = ["FlightRecorder", "PHASES"]

#: Phase names, in pipeline order, as they appear in span operations
#: and per-round ``phase_ms`` maps.
PHASES = ("ingest", "localization", "deadline_propagation",
          "scg_estimation", "decision")

#: Service name stamped on every self-trace span.
SELF_SERVICE = "sora-control-plane"


def _quantize(seconds: float) -> float:
    """Snap a timestamp to the microsecond grid the export serializes."""
    return round(seconds * 1e6) / 1e6


def _span_tree_dict(span: Span) -> dict:
    """JSON-ready nested view of one span (ms durations for humans)."""
    departure = _t.cast(float, span.departure)
    return {
        "span_id": span.span_id,
        "service": span.service,
        "operation": span.operation,
        "start_s": span.arrival,
        "duration_ms": round((departure - span.arrival) * 1e3, 3),
        "children": [_span_tree_dict(child) for child in span.children],
    }


class FlightRecorder:
    """Bounded warehouse of self-traced control rounds.

    Args:
        max_rounds: ring capacity; ``0`` disables the recorder (it
            becomes falsy and every instrumented call site skips its
            bookkeeping behind one boolean check).
    """

    def __init__(self, max_rounds: int = 256) -> None:
        if max_rounds < 0:
            raise ValueError(
                f"max_rounds must be >= 0, got {max_rounds}")
        self.max_rounds = max_rounds
        self.enabled = max_rounds > 0
        self._rounds: deque[dict] = deque(maxlen=max(1, max_rounds))
        #: ``(kind, start, end)`` clock spans of accepted ingests since
        #: the last round; bounded so a scrape storm between rounds
        #: cannot grow memory.
        self._ingest: deque[tuple[str, float, float]] = deque(
            maxlen=4096)
        #: Per-round scratch of ``(service, start, end)`` estimate
        #: timings, filled by the control plane's ``_decide``.
        self._estimates: list[tuple[str, float, float]] = []
        self._t0 = _time.perf_counter()
        self.rounds_recorded = 0

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self._rounds)

    # ------------------------------------------------------------------
    # Instrumentation hooks (called by ControlPlane)
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Monotonic wall seconds since the recorder was created."""
        return _time.perf_counter() - self._t0

    def note_ingest(self, kind: str, started: float) -> None:
        """Record one accepted ingest's wall interval."""
        self._ingest.append((kind, started, self.clock()))

    def note_estimate(self, service: str, started: float,
                      ended: float) -> None:
        """Record one service's SCG estimate wall interval."""
        self._estimates.append((service, started, ended))

    def record_round(self, *, round_index: int, time: float,
                     trigger: str, critical_service: str | None,
                     decisions: _t.Sequence[str],
                     started: float, localized: float,
                     propagated: float, decided: float) -> None:
        """Fold one finished round into a span tree and retain it.

        Args:
            round_index: 1-based round ordinal (doubles as trace id).
            time: the round's logical time (stamped on the summary,
                never on span clocks — those are wall).
            trigger: the round's trigger string.
            critical_service: localization verdict.
            decisions: decided service names, in decision order.
            started / localized / propagated / decided: recorder-clock
                marks at each phase boundary.
        """
        recorded = self.clock()
        ingest_ops = list(self._ingest)
        self._ingest.clear()
        estimates = self._estimates
        self._estimates = []

        arrival = min([started] + [s for _k, s, _e in ingest_ops])
        root = Span(round_index, SELF_SERVICE, "round",
                    _quantize(arrival))
        root.started = root.arrival
        root.departure = _quantize(recorded)

        ingest_ms = {"metrics": 0.0, "traces": 0.0}
        counts = {"metrics": 0, "traces": 0}
        for kind in ("metrics", "traces"):
            ops = [(s, e) for k, s, e in ingest_ops if k == kind]
            if not ops:
                continue
            counts[kind] = len(ops)
            ingest_ms[kind] = sum(e - s for s, e in ops) * 1e3
            span = Span(round_index, SELF_SERVICE, f"ingest.{kind}",
                        _quantize(min(s for s, _e in ops)), parent=root)
            span.started = span.arrival
            span.departure = _quantize(max(e for _s, e in ops))

        def phase(operation: str, start: float, end: float,
                  parent: Span = root) -> Span:
            span = Span(round_index, SELF_SERVICE, operation,
                        _quantize(start), parent=parent)
            span.started = span.arrival
            span.departure = _quantize(end)
            return span

        phase("localization", started, localized)
        phase("deadline_propagation", localized, propagated)
        estimation = phase("scg_estimation", propagated, decided)
        for service, est_start, est_end in estimates:
            phase(f"estimate.{service}", est_start, est_end,
                  parent=estimation)
        phase("decision", decided, recorded)

        phase_ms = {
            "ingest": round(ingest_ms["metrics"] + ingest_ms["traces"],
                            3),
            "localization": round((localized - started) * 1e3, 3),
            "deadline_propagation": round(
                (propagated - localized) * 1e3, 3),
            "scg_estimation": round((decided - propagated) * 1e3, 3),
            "decision": round((recorded - decided) * 1e3, 3),
        }
        self._rounds.append({
            "round": round_index,
            "trace_id": format(round_index, "032x"),
            "time": time,
            "trigger": trigger,
            "critical_service": critical_service,
            "decisions": list(decisions),
            "wall_ms": round((recorded - started) * 1e3, 3),
            "phase_ms": phase_ms,
            "ingest": dict(counts),
            "root": root,
        })
        self.rounds_recorded += 1

    # ------------------------------------------------------------------
    # Views (served by /debug/rounds)
    # ------------------------------------------------------------------
    def summaries(self) -> list[dict]:
        """Retained rounds, oldest first, without span trees."""
        return [{key: value for key, value in entry.items()
                 if key != "root"} for entry in self._rounds]

    def round(self, round_index: int) -> dict | None:
        """One retained round with its span tree and Jaeger export."""
        for entry in self._rounds:
            if entry["round"] == round_index:
                root = entry["root"]
                payload = {key: value for key, value in entry.items()
                           if key != "root"}
                payload["spans"] = _span_tree_dict(root)
                payload["jaeger"] = {"data": [trace_to_jaeger(root)]}
                return payload
        return None

    def latest_wall_ms(self) -> list[tuple[int, float]]:
        """``(round, wall_ms)`` pairs for the retained rounds."""
        return [(entry["round"], entry["wall_ms"])
                for entry in self._rounds]
