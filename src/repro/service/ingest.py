"""Ingestion adapters: foreign telemetry → domain observations.

Two wire formats come in, both already spoken elsewhere in the repo:

- **OpenMetrics text exposition** — the exact format
  :func:`repro.obs.render_openmetrics` emits and any Prometheus-style
  scraper produces. Parsing reuses the strict round-trip parser
  (:func:`repro.obs.parse_openmetrics`), so malformed payloads are
  rejected with the parser's established error taxonomy ("bad
  sample", "bad comment", "missing # EOF terminator", ...) wrapped in
  a typed :class:`~repro.service.domain.IngestError`.
- **Jaeger-API-shaped JSON trace batches** — the ``data[].spans[]``
  document :func:`repro.tracing.export_traces` writes and Jaeger's
  HTTP API returns, parsed by
  :func:`repro.tracing.traces_from_jaeger`.

Adapters validate and translate only; they never touch control-plane
state, which keeps the application layer testable without HTTP and
the replay path byte-deterministic.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field

from repro.obs.openmetrics import parse_openmetrics
from repro.service.domain import IngestError, ServiceConfig
from repro.tracing.export import traces_from_jaeger
from repro.tracing.span import Span

__all__ = [
    "MetricsSnapshot",
    "SeriesSample",
    "parse_metrics_snapshot",
    "parse_trace_batch",
]


class SeriesSample(_t.NamedTuple):
    """One service's readings extracted from a metrics snapshot."""

    concurrency: float
    rate: float
    utilization: float | None
    allocation: float | None


@dataclass(frozen=True)
class MetricsSnapshot:
    """A validated scrape: per-service readings plus an optional
    source-supplied logical timestamp (``None`` when the exposition
    carries no clock family — the control plane then assigns ingest
    order as the logical time, which keeps replay deterministic).
    """

    time: float | None
    series: dict[str, SeriesSample] = field(default_factory=dict)


def _by_service(families: dict, family: str,
                label: str) -> dict[str, float]:
    """``service -> value`` for one gauge family (strict on labels)."""
    entry = families.get(family)
    if entry is None:
        return {}
    values: dict[str, float] = {}
    for sample in entry["samples"]:
        service = sample.labels.get(label)
        if service is None:
            raise IngestError(
                "missing-label",
                f"sample {sample.name} lacks the "
                f"{label!r} label identifying its service")
        values[service] = sample.value
    return values


def parse_metrics_snapshot(text: str,
                           config: ServiceConfig) -> MetricsSnapshot:
    """Validate one OpenMetrics exposition into a snapshot.

    Raises:
        IngestError: ``"bad-openmetrics"`` when the strict parser
            rejects the text (its message is preserved verbatim),
            ``"missing-family"`` when the required concurrency/rate
            families are absent or empty, ``"missing-label"`` when a
            sample cannot be attributed to a service.
    """
    try:
        families = parse_openmetrics(text)
    except ValueError as exc:
        raise IngestError("bad-openmetrics", str(exc)) from exc

    label = config.service_label
    concurrency = _by_service(families, config.concurrency_family, label)
    rate = _by_service(families, config.rate_family, label)
    utilization = _by_service(families, config.utilization_family, label)
    allocation = _by_service(families, config.allocation_family, label)
    if not concurrency or not rate:
        raise IngestError(
            "missing-family",
            f"snapshot needs non-empty {config.concurrency_family!r} "
            f"and {config.rate_family!r} families (got "
            f"{sorted(families)})")

    series: dict[str, SeriesSample] = {}
    for service in sorted(concurrency.keys() & rate.keys()):
        series[service] = SeriesSample(
            concurrency=concurrency[service],
            rate=rate[service],
            utilization=utilization.get(service),
            allocation=allocation.get(service),
        )
    if not series:
        raise IngestError(
            "missing-family",
            "concurrency and rate families share no service label")
    # Utilization-only services still matter: they feed the screening
    # step even when the source exports no pool telemetry for them.
    for service, value in utilization.items():
        if service not in series:
            series[service] = SeriesSample(
                concurrency=float("nan"), rate=float("nan"),
                utilization=value, allocation=allocation.get(service))

    time: float | None = None
    clock = families.get(config.time_family)
    if clock is not None and clock["samples"]:
        time = float(clock["samples"][0].value)
    return MetricsSnapshot(time=time, series=series)


def parse_trace_batch(body: str | bytes) -> list[Span]:
    """Validate one Jaeger-shaped JSON document into span trees.

    Raises:
        IngestError: ``"bad-json"`` when the body is not JSON,
            ``"bad-jaeger"`` when the document parses but lacks the
            ``data[].spans[]`` shape (or a trace has no root span).
    """
    if isinstance(body, bytes):
        body = body.decode("utf-8", errors="replace")
    try:
        document = json.loads(body)
    except json.JSONDecodeError as exc:
        raise IngestError("bad-json", str(exc)) from exc
    if not isinstance(document, dict) or "data" not in document:
        raise IngestError(
            "bad-jaeger", "document must be an object with a 'data' "
            "array of traces")
    try:
        roots = traces_from_jaeger(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise IngestError("bad-jaeger", str(exc)) from exc
    for root in roots:
        if not root.finished:
            raise IngestError(
                "bad-jaeger",
                f"trace {root.trace_id:#x} has an unfinished root span")
    return roots
