"""The scenario zoo: seeded, parameterized topology generation.

Each archetype reproduces one tail-at-scale pattern in which *degraded
responses change the shape of the call graph*, not just its timing —
the regime where soft-resource knees move and the paper's two
hand-built benchmarks stop being representative:

- ``fanout_slow_shard`` — a gateway fans out to ``shards`` shards in
  parallel; one shard is ``slow_factor`` slower and its edge carries a
  timeout-plus-degrade policy, so overloads *truncate* that subtree;
- ``quorum_reads`` — k-of-n reads over replicated stores; once ``k``
  members answer, the stragglers are cancelled mid-flight;
- ``hedged_requests`` — a hedge duplicate is issued when the primary
  call is slower than ``hedge_after``; the loser is cancelled;
- ``cache_aside`` — a weighted hit/miss choice; misses fall through to
  the database, and a scheduled invalidation storm flips the ratio;
- ``hot_shard_db`` — key-hash routing over ``shards`` database shards
  with one hot key taking a ``hot_weight`` share of the traffic.

Every generator is a pure function of a :class:`ZooParams` (itself
JSON-round-trippable) plus the run seed, and yields a standard
:class:`~repro.experiments.harness.Scenario`, so the whole experiment
harness — controllers, autoscalers, fault plans, observability, replay
fingerprints — applies unchanged. :func:`topology_to_dict` gives a
canonical structural serialization used by golden-snapshot tests and
:func:`topology_fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
import typing as _t
from dataclasses import dataclass, fields

import repro.obs as obs_mod
from repro.app.application import Application
from repro.app.behavior import (
    Call,
    Choice,
    ChoiceWindow,
    Compute,
    Hedge,
    Operation,
    Parallel,
    Quorum,
    Step,
)
from repro.app.service import Microservice
from repro.core import ClientPoolTarget, MonitoringModule
from repro.experiments.harness import Scenario
from repro.experiments.scenarios import (
    AutoscalerKind,
    ControllerKind,
    build_autoscaler,
    build_controller,
    build_faults,
)
from repro.faults import FaultPlan
from repro.faults.plan import (
    BlackoutFault,
    CrashFault,
    EdgeFailureFault,
    EdgeLatencyFault,
    InterferenceFault,
)
from repro.faults.resilience import CallPolicy
from repro.sim import Environment, RandomStreams
from repro.sim.distributions import LogNormal
from repro.workloads import ClosedLoopDriver, WorkloadTrace

#: Archetype registry, in canonical (sorted) order.
ARCHETYPES = (
    "cache_aside",
    "fanout_slow_shard",
    "hedged_requests",
    "hot_shard_db",
    "quorum_reads",
)

#: Fault-plan kinds :func:`zoo_fault_plan` resolves per archetype.
ZOO_FAULT_KINDS = (
    "none",
    "interference",
    "edge_latency",
    "edge_failure",
    "blackout",
    "crash",
)

#: Entry service name shared by every archetype.
ENTRY = "gateway"

#: Request type registered for every generated topology.
REQUEST_TYPE = "zoo"


@dataclass(frozen=True)
class ZooParams:
    """Parameters of one generated topology (JSON-round-trippable).

    A superset of per-archetype knobs; each archetype reads the subset
    it needs and validates it at construction time, so an invalid draw
    fails fast instead of producing a silently-degenerate topology.

    Attributes:
        archetype: one of :data:`ARCHETYPES`.
        shards: fan-out width / quorum group size / shard count.
        quorum_k: successes required by ``quorum_reads``.
        slow_factor: demand multiplier of the slow member.
        hedge_after: hedge delay in seconds (``hedged_requests``).
        hit_ratio: cache hit probability (``cache_aside``).
        storm_at / storm_duration / storm_miss: invalidation-storm
            window — while active the miss probability becomes
            ``storm_miss`` (``storm_at=None`` disables the storm).
        hot_weight: traffic share of the hot shard (``hot_shard_db``).
        demand_ms: mean leaf CPU demand per request, milliseconds.
        demand_cv: coefficient of variation of all demand draws.
        entry_threads: gateway server thread pool size.
        connections: capacity of the gateway's shared client pool —
            the adapted soft resource in every archetype.
        replicas: replicas per backend service.
        degrade_timeout: slow-shard call deadline after which the
            fan-out degrades (skips) that subtree; ``None`` disables
            the policy (``fanout_slow_shard``).
    """

    archetype: str
    shards: int = 4
    quorum_k: int = 2
    slow_factor: float = 4.0
    hedge_after: float = 0.03
    hit_ratio: float = 0.9
    storm_at: float | None = None
    storm_duration: float = 30.0
    storm_miss: float = 0.9
    hot_weight: float = 0.6
    demand_ms: float = 4.0
    demand_cv: float = 0.8
    entry_threads: int = 30
    connections: int = 24
    replicas: int = 2
    degrade_timeout: float | None = 0.25

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(
                f"unknown archetype {self.archetype!r} "
                f"(have: {', '.join(ARCHETYPES)})")
        if self.shards < 2:
            raise ValueError(f"need >= 2 shards, got {self.shards}")
        if not 1 <= self.quorum_k <= self.shards:
            raise ValueError(
                f"need 1 <= quorum_k <= {self.shards}, "
                f"got {self.quorum_k}")
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.hedge_after <= 0:
            raise ValueError(
                f"hedge_after must be positive, got {self.hedge_after}")
        if not 0.0 < self.hit_ratio < 1.0:
            raise ValueError(
                f"hit_ratio must be in (0, 1), got {self.hit_ratio}")
        if self.storm_at is not None and self.storm_at < 0:
            raise ValueError(
                f"storm_at must be >= 0, got {self.storm_at}")
        if self.storm_duration <= 0:
            raise ValueError(f"storm_duration must be positive, "
                             f"got {self.storm_duration}")
        if not 0.0 < self.storm_miss <= 1.0:
            raise ValueError(
                f"storm_miss must be in (0, 1], got {self.storm_miss}")
        if not 0.0 < self.hot_weight < 1.0:
            raise ValueError(
                f"hot_weight must be in (0, 1), got {self.hot_weight}")
        if self.demand_ms <= 0:
            raise ValueError(
                f"demand_ms must be positive, got {self.demand_ms}")
        if self.demand_cv <= 0:
            raise ValueError(
                f"demand_cv must be positive, got {self.demand_cv}")
        if self.entry_threads < 1:
            raise ValueError(
                f"entry_threads must be >= 1, got {self.entry_threads}")
        if self.connections < 1:
            raise ValueError(
                f"connections must be >= 1, got {self.connections}")
        if self.replicas < 1:
            raise ValueError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.degrade_timeout is not None and self.degrade_timeout <= 0:
            raise ValueError(f"degrade_timeout must be positive, "
                             f"got {self.degrade_timeout}")

    @property
    def label(self) -> str:
        """Compact identity, e.g. ``quorum_reads[n=4,k=2]``."""
        extra = {
            "cache_aside": f"hit={self.hit_ratio:g}",
            "fanout_slow_shard": f"n={self.shards}",
            "hedged_requests": f"after={self.hedge_after:g}",
            "hot_shard_db": f"n={self.shards},hot={self.hot_weight:g}",
            "quorum_reads": f"n={self.shards},k={self.quorum_k}",
        }[self.archetype]
        return f"{self.archetype}[{extra}]"

    def to_dict(self) -> dict:
        """JSON-ready payload (all fields, ``None`` included)."""
        return {field.name: getattr(self, field.name)
                for field in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ZooParams":
        """Rebuild params from :meth:`to_dict` output."""
        allowed = {field.name for field in fields(cls)}
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown ZooParams field(s) {sorted(unknown)}")
        return cls(**payload)


@dataclass
class GeneratedTopology:
    """A generated application plus the wiring metadata scenarios need.

    Attributes:
        app: the validated application.
        params: the generating parameters.
        bottleneck: the service whose processing the adapted pool
            gates (fault plans and autoscalers aim here).
        pool_name: name of the gateway client pool adapted as the
            soft resource.
        critical_edge: the ``(caller, callee)`` edge that degrades
            first under load (fault plans inject here).
    """

    app: Application
    params: ZooParams
    bottleneck: str
    pool_name: str
    critical_edge: tuple[str, str]


def bottleneck_service(params: ZooParams) -> str:
    """The critical downstream service name, without building the app.

    Deterministic per archetype so fault plans can be declared before
    (and independently of) topology construction.
    """
    return {
        "cache_aside": "db",
        "fanout_slow_shard": "shard-0",
        "hedged_requests": "backend",
        "hot_shard_db": "shard-0",
        "quorum_reads": "replica-0",
    }[params.archetype]


# ----------------------------------------------------------------------
# Archetype builders
# ----------------------------------------------------------------------
def _demand(params: ZooParams, mean_ms: float) -> LogNormal:
    return LogNormal(mean=mean_ms / 1000.0, cv=params.demand_cv)


def _gateway(env: Environment, streams: RandomStreams, app: Application,
             params: ZooParams) -> Microservice:
    gateway = Microservice(env, ENTRY, streams.stream(f"{ENTRY}.demand"),
                           cores=4.0, cpu_overhead=0.015,
                           thread_pool_size=params.entry_threads)
    return app.add_service(gateway)


def _backend(env: Environment, streams: RandomStreams, app: Application,
             params: ZooParams, name: str, mean_ms: float,
             cores: float = 2.0) -> Microservice:
    service = Microservice(env, name, streams.stream(f"{name}.demand"),
                           cores=cores, cpu_overhead=0.015,
                           replicas=params.replicas)
    service.add_operation(Operation("default", [
        Compute(_demand(params, mean_ms))]))
    return app.add_service(service)


def _build_fanout_slow_shard(env: Environment, streams: RandomStreams,
                             params: ZooParams) -> GeneratedTopology:
    """Parallel fan-out where shard-0 is the slow straggler.

    The gateway's shared ``shards`` pool gates all shard calls; the
    slow edge optionally carries a timeout-plus-degrade policy, so a
    saturated slow shard yields partial responses (skipped subtree)
    instead of dragging the whole fan-out past the SLA.
    """
    app = Application(env)
    gateway = _gateway(env, streams, app, params)
    for index in range(params.shards):
        mean = params.demand_ms * (params.slow_factor if index == 0
                                   else 1.0)
        _backend(env, streams, app, params, f"shard-{index}", mean)
    gateway.add_client_pool("shards", params.connections)
    gateway.add_operation(Operation(REQUEST_TYPE, [
        Compute(_demand(params, 0.5)),
        Parallel([Call(f"shard-{i}", via_pool="shards")
                  for i in range(params.shards)]),
        Compute(_demand(params, 0.3)),
    ]))
    if params.degrade_timeout is not None:
        gateway.set_call_policy(
            "shard-0",
            CallPolicy(timeout=params.degrade_timeout, degrade=True))
    app.set_entrypoint(REQUEST_TYPE, ENTRY, REQUEST_TYPE)
    app.validate()
    return GeneratedTopology(app=app, params=params,
                             bottleneck="shard-0", pool_name="shards",
                             critical_edge=(ENTRY, "shard-0"))


def _build_quorum_reads(env: Environment, streams: RandomStreams,
                        params: ZooParams) -> GeneratedTopology:
    """k-of-n reads over ``shards`` replicas, replica-0 slow.

    The quorum masks the slow member's latency but not its pool
    pressure: every member call holds a token from the shared
    ``replicas`` pool until it completes or is cancelled, so straggler
    cancellation is what keeps the pool from saturating.
    """
    app = Application(env)
    gateway = _gateway(env, streams, app, params)
    for index in range(params.shards):
        mean = params.demand_ms * (params.slow_factor if index == 0
                                   else 1.0)
        _backend(env, streams, app, params, f"replica-{index}", mean)
    gateway.add_client_pool("replicas", params.connections)
    gateway.add_operation(Operation(REQUEST_TYPE, [
        Compute(_demand(params, 0.5)),
        Quorum([Call(f"replica-{i}", via_pool="replicas")
                for i in range(params.shards)], k=params.quorum_k),
        Compute(_demand(params, 0.3)),
    ]))
    app.set_entrypoint(REQUEST_TYPE, ENTRY, REQUEST_TYPE)
    app.validate()
    return GeneratedTopology(app=app, params=params,
                             bottleneck="replica-0",
                             pool_name="replicas",
                             critical_edge=(ENTRY, "replica-0"))


def _build_hedged_requests(env: Environment, streams: RandomStreams,
                           params: ZooParams) -> GeneratedTopology:
    """A heavy-tailed backend guarded by hedged requests.

    Hedge duplicates double the pool/backend load of slow requests, so
    the goodput-optimal ``backend`` pool size shifts with the hedge
    delay — exactly the coupling a static allocation misses.
    """
    app = Application(env)
    gateway = _gateway(env, streams, app, params)
    backend = Microservice(env, "backend",
                           streams.stream("backend.demand"),
                           cores=2.0, cpu_overhead=0.015,
                           replicas=max(2, params.replicas))
    backend.add_operation(Operation("default", [
        Compute(_demand(params, params.demand_ms)),
        Call("backend-db"),
    ]))
    app.add_service(backend)
    _backend(env, streams, app, params, "backend-db",
             params.demand_ms / 2.0)
    gateway.add_client_pool("backend", params.connections)
    gateway.add_operation(Operation(REQUEST_TYPE, [
        Compute(_demand(params, 0.5)),
        Hedge(Call("backend", via_pool="backend"),
              after=params.hedge_after),
        Compute(_demand(params, 0.3)),
    ]))
    app.set_entrypoint(REQUEST_TYPE, ENTRY, REQUEST_TYPE)
    app.validate()
    return GeneratedTopology(app=app, params=params,
                             bottleneck="backend", pool_name="backend",
                             critical_edge=(ENTRY, "backend"))


def _build_cache_aside(env: Environment, streams: RandomStreams,
                       params: ZooParams) -> GeneratedTopology:
    """Cache-aside reads with an optional invalidation storm.

    A hit touches only the cache; a miss falls through to the database
    and pays a fill. The storm window flips the hit ratio, multiplying
    db pressure mid-run — the system-state drift of §2.3, expressed as
    call-graph shape instead of demand scale.
    """
    app = Application(env)
    gateway = _gateway(env, streams, app, params)
    _backend(env, streams, app, params, "cache", 0.3)
    _backend(env, streams, app, params, "db", params.demand_ms * 2.0)
    gateway.add_client_pool("db", params.connections)
    window = None
    if params.storm_at is not None:
        window = ChoiceWindow(params.storm_at, params.storm_duration,
                              (1.0 - params.storm_miss,
                               params.storm_miss))
    gateway.add_operation(Operation(REQUEST_TYPE, [
        Compute(_demand(params, 0.5)),
        Choice(
            branches=[
                (Call("cache"),),
                (Call("cache"), Call("db", via_pool="db"),
                 Compute(_demand(params, 0.5))),
            ],
            weights=(params.hit_ratio, 1.0 - params.hit_ratio),
            window=window),
        Compute(_demand(params, 0.3)),
    ]))
    app.set_entrypoint(REQUEST_TYPE, ENTRY, REQUEST_TYPE)
    app.validate()
    return GeneratedTopology(app=app, params=params, bottleneck="db",
                             pool_name="db",
                             critical_edge=(ENTRY, "db"))


def _build_hot_shard_db(env: Environment, streams: RandomStreams,
                        params: ZooParams) -> GeneratedTopology:
    """Key-hash routing over ``shards`` DB shards with one hot key.

    shard-0 receives a ``hot_weight`` share of the traffic through the
    shared ``shards`` pool; the cold shards idle while the hot shard's
    queue (and the pool occupancy it induces) grows.
    """
    app = Application(env)
    gateway = _gateway(env, streams, app, params)
    for index in range(params.shards):
        _backend(env, streams, app, params, f"shard-{index}",
                 params.demand_ms)
    gateway.add_client_pool("shards", params.connections)
    cold = (1.0 - params.hot_weight) / (params.shards - 1)
    weights = tuple(params.hot_weight if i == 0 else cold
                    for i in range(params.shards))
    gateway.add_operation(Operation(REQUEST_TYPE, [
        Compute(_demand(params, 0.5)),
        Choice(
            branches=[(Call(f"shard-{i}", via_pool="shards"),)
                      for i in range(params.shards)],
            weights=weights),
        Compute(_demand(params, 0.3)),
    ]))
    app.set_entrypoint(REQUEST_TYPE, ENTRY, REQUEST_TYPE)
    app.validate()
    return GeneratedTopology(app=app, params=params,
                             bottleneck="shard-0", pool_name="shards",
                             critical_edge=(ENTRY, "shard-0"))


_BUILDERS: dict[str, _t.Callable[[Environment, RandomStreams, ZooParams],
                                 GeneratedTopology]] = {
    "cache_aside": _build_cache_aside,
    "fanout_slow_shard": _build_fanout_slow_shard,
    "hedged_requests": _build_hedged_requests,
    "hot_shard_db": _build_hot_shard_db,
    "quorum_reads": _build_quorum_reads,
}


def build_topology(env: Environment, streams: RandomStreams,
                   params: ZooParams) -> GeneratedTopology:
    """Generate the archetype's application on ``env``.

    A pure function of ``(streams.seed, params)``: the same inputs
    always produce a structurally identical application (see
    :func:`topology_fingerprint`).
    """
    return _BUILDERS[params.archetype](env, streams, params)


# ----------------------------------------------------------------------
# Scenario assembly
# ----------------------------------------------------------------------
def zoo_scenario(params: ZooParams, *, trace: WorkloadTrace,
                 sla: float = 0.4,
                 controller: ControllerKind = "none",
                 autoscaler: AutoscalerKind = "none",
                 seed: int = 42, name: str | None = None,
                 obs: obs_mod.Observability | None = None,
                 fault_plan: FaultPlan | None = None) -> Scenario:
    """Assemble a runnable scenario around a generated topology.

    The adapted soft resource is always the gateway's shared client
    pool to the archetype's bottleneck service; the autoscaler (if
    any) scales the bottleneck. Everything else matches the hand-built
    scenario factories in :mod:`repro.experiments.scenarios`.
    """
    env = Environment()
    streams = RandomStreams(seed)
    topology = build_topology(env, streams, params)
    app = topology.app
    gateway = app.service(ENTRY)
    bottleneck = app.service(topology.bottleneck)
    monitoring = MonitoringModule(env, app)
    driver = ClosedLoopDriver(env, app, REQUEST_TYPE, trace,
                              streams.stream("driver"), ramp_up=10.0)
    target = ClientPoolTarget(gateway, topology.pool_name, bottleneck)

    obs = obs if obs is not None else obs_mod.NULL
    if fault_plan is not None:
        fault_plan.validate(app)
    scaler = build_autoscaler(autoscaler, env, app, monitoring,
                              bottleneck, sla=sla,
                              request_type=REQUEST_TYPE, obs=obs)
    ctrl = build_controller(controller, env, app, monitoring, [target],
                            sla=sla, autoscaler=scaler, obs=obs)
    return Scenario(
        name=name or (f"zoo/{params.label}/{trace.name}/"
                      f"{controller}+{autoscaler}"),
        env=env, streams=streams, app=app, monitoring=monitoring,
        drivers=[driver], request_type=REQUEST_TYPE, sla=sla,
        controller=ctrl, autoscaler=scaler, target=target, obs=obs,
        faults=build_faults(fault_plan, env, app, streams, obs))


def zoo_fault_plan(params: ZooParams, kind: str, *, at: float = 60.0,
                   duration: float = 60.0) -> FaultPlan:
    """A one-fault plan aimed at the archetype's critical path.

    ``kind`` picks the failure mode (:data:`ZOO_FAULT_KINDS`); the
    target service/edge is resolved from the archetype so matrix axes
    can say "interference" without knowing service names.
    """
    service = bottleneck_service(params)
    if kind == "none":
        return FaultPlan()
    if kind == "interference":
        spec = InterferenceFault(service=service, at=at,
                                 duration=duration, demand_factor=2.0,
                                 core_steal=0.25)
    elif kind == "edge_latency":
        spec = EdgeLatencyFault(caller=ENTRY, callee=service, at=at,
                                duration=duration, delay=0.04,
                                jitter=0.5)
    elif kind == "edge_failure":
        spec = EdgeFailureFault(caller=ENTRY, callee=service, at=at,
                                duration=duration, probability=0.1)
    elif kind == "blackout":
        if params.replicas < 2:
            raise ValueError(
                "blackout needs >= 2 replicas on the bottleneck "
                f"service, params have {params.replicas}")
        spec = BlackoutFault(service=service, at=at, duration=duration,
                             replicas=1)
    elif kind == "crash":
        spec = CrashFault(service=service, at=at, mode="drain",
                          restart_after=duration)
    else:
        raise ValueError(f"unknown zoo fault kind {kind!r} "
                         f"(have: {', '.join(ZOO_FAULT_KINDS)})")
    return FaultPlan(faults=(spec,))


# ----------------------------------------------------------------------
# Structural serialization (golden snapshots, fingerprints)
# ----------------------------------------------------------------------
def _step_to_dict(step: Step) -> dict:
    if isinstance(step, Compute):
        return {"compute": repr(step.demand)}
    if isinstance(step, Call):
        payload: dict[str, _t.Any] = {"call": step.service,
                                      "operation": step.operation}
        if step.via_pool is not None:
            payload["via_pool"] = step.via_pool
        return payload
    if isinstance(step, Parallel):
        return {"parallel": [_step_to_dict(c) for c in step.calls]}
    if isinstance(step, Quorum):
        return {"quorum": [_step_to_dict(c) for c in step.calls],
                "k": step.k}
    if isinstance(step, Hedge):
        return {"hedge": _step_to_dict(step.call), "after": step.after}
    if isinstance(step, Choice):
        payload = {
            "choice": [[_step_to_dict(s) for s in branch]
                       for branch in step.branches],
            "weights": list(step.weights),
        }
        if step.window is not None:
            payload["window"] = {
                "at": step.window.at,
                "duration": step.window.duration,
                "weights": list(step.window.weights),
            }
        return payload
    raise TypeError(f"unserializable step {step!r}")


def topology_to_dict(app: Application) -> dict:
    """Canonical structural serialization of an application.

    Captures everything that defines the call graph's *shape* —
    services (sorted), per-service resources, operations with their
    full step trees (distributions by repr), call policies, and
    entrypoints — and nothing runtime-dependent, so two builds from
    the same params are dict-identical.
    """
    services: dict[str, dict] = {}
    for name in sorted(app.services):
        service = app.services[name]
        entry: dict[str, _t.Any] = {
            "cores": service.cores_per_replica,
            "replicas": service.replica_count,
            "threads": service.thread_pool_size,
            "client_pools": {
                pool_name: service.client_pools[pool_name].capacity
                for pool_name in sorted(service.client_pools)
            },
            "operations": {
                op_name: [_step_to_dict(step)
                          for step in service.operations[op_name].steps]
                for op_name in sorted(service.operations)
            },
        }
        policies = getattr(service, "_call_policies", {})
        if policies:
            entry["call_policies"] = {
                callee: {
                    "timeout": policies[callee].policy.timeout,
                    "degrade": policies[callee].policy.degrade,
                    "attempts": policies[callee].policy.max_attempts,
                }
                for callee in sorted(policies)
            }
        services[name] = entry
    return {
        "services": services,
        "entrypoints": {
            request_type: list(app.entrypoints[request_type])
            for request_type in sorted(app.entrypoints)
        },
    }


def topology_fingerprint(app: Application) -> str:
    """Digest of :func:`topology_to_dict`'s canonical JSON form."""
    canonical = json.dumps(topology_to_dict(app), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"),
                           digest_size=16).hexdigest()


def structural_diff(expected: _t.Any, actual: _t.Any,
                    path: str = "$") -> list[str]:
    """Human-readable differences between two topology dicts.

    Returns one ``path: expected != actual`` line per divergence (an
    empty list means structurally identical) — golden tests assert on
    this instead of a giant JSON equality blob.
    """
    if type(expected) is not type(actual):
        return [f"{path}: type {type(expected).__name__} != "
                f"{type(actual).__name__}"]
    if isinstance(expected, dict):
        lines: list[str] = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                lines.append(f"{path}.{key}: unexpected key")
            elif key not in actual:
                lines.append(f"{path}.{key}: missing key")
            else:
                lines.extend(structural_diff(expected[key], actual[key],
                                             f"{path}.{key}"))
        return lines
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return [f"{path}: length {len(expected)} != {len(actual)}"]
        lines = []
        for index, (a, b) in enumerate(zip(expected, actual)):
            lines.extend(structural_diff(a, b, f"{path}[{index}]"))
        return lines
    if expected != actual:
        return [f"{path}: {expected!r} != {actual!r}"]
    return []
