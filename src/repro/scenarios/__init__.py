"""``repro.scenarios``: generated scenario families beyond the paper.

The hand-built Sock Shop / Social Network topologies (in
:mod:`repro.app.topologies`) reproduce the paper's two benchmarks; this
package *generates* scenario families from seeded parameters so the
localization → propagation → SCG loop can be validated across many
call-graph shapes. :mod:`repro.scenarios.zoo` holds the archetype
generators; :mod:`repro.experiments.matrix` drives grids of them.
"""

from repro.scenarios.zoo import (
    ARCHETYPES,
    ZOO_FAULT_KINDS,
    GeneratedTopology,
    ZooParams,
    bottleneck_service,
    build_topology,
    structural_diff,
    topology_fingerprint,
    topology_to_dict,
    zoo_fault_plan,
    zoo_scenario,
)

__all__ = [
    "ARCHETYPES",
    "GeneratedTopology",
    "ZOO_FAULT_KINDS",
    "ZooParams",
    "bottleneck_service",
    "build_topology",
    "structural_diff",
    "topology_fingerprint",
    "topology_to_dict",
    "zoo_fault_plan",
    "zoo_scenario",
]
