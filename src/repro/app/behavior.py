"""Operation behaviors: what a service does when it handles a request.

An :class:`Operation` is a sequence of steps executed by a replica:

- :class:`Compute` — burn CPU (a demand drawn from a distribution);
- :class:`Call` — synchronous downstream RPC, optionally gated by a named
  client-side connection pool (e.g. Catalogue's DB connection pool, or
  Home-Timeline's Thrift ClientPool to Post Storage);
- :class:`Parallel` — a fan-out of calls issued concurrently and joined
  before the next step (e.g. the front-end querying Cart and Catalogue).

Tail-at-scale steps (used by the scenario zoo,
:mod:`repro.scenarios.zoo`) change the *shape* of the call graph per
request, not just its timing:

- :class:`Quorum` — issue n calls concurrently, proceed once k have
  succeeded and abandon the stragglers (k-of-n read semantics);
- :class:`Hedge` — issue a call, and if it has not returned within a
  hedge delay issue a duplicate; the first response wins and the loser
  is cancelled;
- :class:`Choice` — pick one branch of steps by weight (cache hit vs.
  miss fallthrough, hot-key shard routing), with an optional scheduled
  weight override window (an invalidation storm).

Topology builders compose these into the Sock Shop / Social Network /
generated-zoo call graphs.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.sim.distributions import Distribution


class Step:
    """Marker base class for operation steps."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Step):
    """Burn CPU for a sampled number of core-seconds."""

    demand: Distribution

    def __post_init__(self) -> None:
        if not isinstance(self.demand, Distribution):
            raise TypeError(f"demand must be a Distribution, got "
                            f"{self.demand!r}")


@dataclass(frozen=True)
class Call(Step):
    """A synchronous call to a downstream service.

    Args:
        service: target service name.
        operation: operation to invoke there.
        via_pool: name of a client pool on the *calling* service that a
            connection must be acquired from for the call's duration
            (``None`` means no client-side gating).
    """

    service: str
    operation: str = "default"
    via_pool: str | None = None


@dataclass(frozen=True)
class Parallel(Step):
    """Issue several calls concurrently and wait for all of them."""

    calls: tuple[Call, ...]

    def __init__(self, calls: _t.Sequence[Call]) -> None:
        if not calls:
            raise ValueError("Parallel requires at least one call")
        if not all(isinstance(c, Call) for c in calls):
            raise TypeError("Parallel accepts only Call steps")
        object.__setattr__(self, "calls", tuple(calls))


@dataclass(frozen=True)
class Quorum(Step):
    """Issue ``calls`` concurrently and proceed once ``k`` succeed.

    The remaining in-flight calls (stragglers) are cancelled as soon as
    the quorum is met — their subtrees are truncated in the trace, so a
    degraded (slow or failing) member changes the *shape* of the call
    graph, not just its timing. The quorum fails (raising the last
    member failure) only when more than ``n - k`` members fail.
    """

    calls: tuple[Call, ...]
    k: int

    def __init__(self, calls: _t.Sequence[Call], k: int) -> None:
        if not calls:
            raise ValueError("Quorum requires at least one call")
        if not all(isinstance(c, Call) for c in calls):
            raise TypeError("Quorum accepts only Call steps")
        if not 1 <= k <= len(calls):
            raise ValueError(
                f"need 1 <= k <= {len(calls)} members, got k={k}")
        object.__setattr__(self, "calls", tuple(calls))
        object.__setattr__(self, "k", int(k))


@dataclass(frozen=True)
class Hedge(Step):
    """Issue ``call``; after ``after`` seconds without a response issue
    an identical hedge request and take whichever finishes first.

    The load balancer routes the duplicate independently (typically to
    another replica), reproducing the tail-at-scale hedged-request
    pattern: fast responses produce one subtree, slow ones produce two
    with the loser cancelled mid-flight.
    """

    call: Call
    after: float

    def __post_init__(self) -> None:
        if not isinstance(self.call, Call):
            raise TypeError("Hedge requires a Call step")
        if self.after <= 0:
            raise ValueError(
                f"hedge delay must be positive, got {self.after}")


@dataclass(frozen=True)
class ChoiceWindow:
    """A scheduled override of a :class:`Choice`'s branch weights.

    During ``[at, at + duration)`` the choice draws from ``weights``
    instead of its base weights — e.g. a cache invalidation storm that
    turns a 90% hit ratio into a 95% miss ratio for thirty seconds.
    """

    at: float
    duration: float
    weights: tuple[float, ...]

    def __init__(self, at: float, duration: float,
                 weights: _t.Sequence[float]) -> None:
        if at < 0:
            raise ValueError(f"at must be >= 0, got {at}")
        if duration <= 0:
            raise ValueError(
                f"duration must be positive, got {duration}")
        object.__setattr__(self, "at", float(at))
        object.__setattr__(self, "duration", float(duration))
        object.__setattr__(self, "weights",
                           _checked_weights(weights))

    def active(self, now: float) -> bool:
        """Whether the override applies at simulated time ``now``."""
        return self.at <= now < self.at + self.duration


@dataclass(frozen=True)
class Choice(Step):
    """Execute exactly one branch of steps, picked by weight.

    The draw comes from the owning service's dedicated random stream,
    so runs stay deterministic per seed. Branches may be empty (the
    "nothing extra happens" arm of a cache hit); a non-trivial branch
    changes the request's call-graph shape — the cache-miss
    fallthrough to the database, or the shard a hot key hashes to.
    """

    branches: tuple[tuple[Step, ...], ...]
    weights: tuple[float, ...]
    window: ChoiceWindow | None = None

    def __init__(self, branches: _t.Sequence[_t.Sequence[Step]],
                 weights: _t.Sequence[float],
                 window: ChoiceWindow | None = None) -> None:
        if not branches:
            raise ValueError("Choice requires at least one branch")
        frozen = []
        for branch in branches:
            steps = tuple(branch)
            if not all(isinstance(s, Step) for s in steps):
                raise TypeError("Choice branches accept only Steps")
            frozen.append(steps)
        checked = _checked_weights(weights)
        if len(checked) != len(frozen):
            raise ValueError(
                f"{len(frozen)} branches need {len(frozen)} weights, "
                f"got {len(checked)}")
        if window is not None and len(window.weights) != len(frozen):
            raise ValueError(
                f"window weights must match {len(frozen)} branches, "
                f"got {len(window.weights)}")
        object.__setattr__(self, "branches", tuple(frozen))
        object.__setattr__(self, "weights", checked)
        object.__setattr__(self, "window", window)

    def weights_at(self, now: float) -> tuple[float, ...]:
        """Effective branch weights at simulated time ``now``."""
        if self.window is not None and self.window.active(now):
            return self.window.weights
        return self.weights


def _checked_weights(weights: _t.Sequence[float]) -> tuple[float, ...]:
    checked = tuple(float(w) for w in weights)
    if not checked:
        raise ValueError("need at least one weight")
    if any(w < 0 for w in checked) or sum(checked) <= 0:
        raise ValueError(f"invalid weights {list(checked)}")
    return checked


@dataclass
class Operation:
    """A named behavior of a service: an ordered list of steps."""

    name: str
    steps: list[Step] = field(default_factory=list)

    def __post_init__(self) -> None:
        for step in self.steps:
            if not isinstance(step, Step):
                raise TypeError(f"{step!r} is not a Step")

    def compute_steps(self) -> list[Compute]:
        """All CPU steps (used by demand-scaling helpers)."""
        return _flatten(self.steps, Compute)

    def downstream_calls(self) -> list[Call]:
        """All calls, flattened out of composite steps.

        Covers :class:`Parallel`, :class:`Quorum`, :class:`Hedge` and
        every :class:`Choice` branch, so the static call graph and
        application validation see every edge a request *could* take.
        """
        return _flatten(self.steps, Call)


_StepT = _t.TypeVar("_StepT", bound=Step)


def _flatten(steps: _t.Iterable[Step],
             kind: type[_StepT]) -> list[_StepT]:
    """All steps of ``kind`` reachable through composite steps."""
    found: list[_StepT] = []
    for step in steps:
        if isinstance(step, kind):
            found.append(step)
        if isinstance(step, (Parallel, Quorum)):
            found.extend(c for c in step.calls if isinstance(c, kind))
        elif isinstance(step, Hedge):
            if isinstance(step.call, kind):
                found.append(step.call)
        elif isinstance(step, Choice):
            for branch in step.branches:
                found.extend(_flatten(branch, kind))
    return found
