"""Operation behaviors: what a service does when it handles a request.

An :class:`Operation` is a sequence of steps executed by a replica:

- :class:`Compute` — burn CPU (a demand drawn from a distribution);
- :class:`Call` — synchronous downstream RPC, optionally gated by a named
  client-side connection pool (e.g. Catalogue's DB connection pool, or
  Home-Timeline's Thrift ClientPool to Post Storage);
- :class:`Parallel` — a fan-out of calls issued concurrently and joined
  before the next step (e.g. the front-end querying Cart and Catalogue).

Topology builders compose these into the Sock Shop / Social Network call
graphs.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.sim.distributions import Distribution


class Step:
    """Marker base class for operation steps."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Step):
    """Burn CPU for a sampled number of core-seconds."""

    demand: Distribution

    def __post_init__(self) -> None:
        if not isinstance(self.demand, Distribution):
            raise TypeError(f"demand must be a Distribution, got "
                            f"{self.demand!r}")


@dataclass(frozen=True)
class Call(Step):
    """A synchronous call to a downstream service.

    Args:
        service: target service name.
        operation: operation to invoke there.
        via_pool: name of a client pool on the *calling* service that a
            connection must be acquired from for the call's duration
            (``None`` means no client-side gating).
    """

    service: str
    operation: str = "default"
    via_pool: str | None = None


@dataclass(frozen=True)
class Parallel(Step):
    """Issue several calls concurrently and wait for all of them."""

    calls: tuple[Call, ...]

    def __init__(self, calls: _t.Sequence[Call]) -> None:
        if not calls:
            raise ValueError("Parallel requires at least one call")
        if not all(isinstance(c, Call) for c in calls):
            raise TypeError("Parallel accepts only Call steps")
        object.__setattr__(self, "calls", tuple(calls))


@dataclass
class Operation:
    """A named behavior of a service: an ordered list of steps."""

    name: str
    steps: list[Step] = field(default_factory=list)

    def __post_init__(self) -> None:
        for step in self.steps:
            if not isinstance(step, Step):
                raise TypeError(f"{step!r} is not a Step")

    def compute_steps(self) -> list[Compute]:
        """All CPU steps (used by demand-scaling helpers)."""
        return [s for s in self.steps if isinstance(s, Compute)]

    def downstream_calls(self) -> list[Call]:
        """All calls, flattened out of Parallel groups."""
        calls: list[Call] = []
        for step in self.steps:
            if isinstance(step, Call):
                calls.append(step)
            elif isinstance(step, Parallel):
                calls.extend(step.calls)
        return calls
