"""The application: a graph of services plus end-to-end accounting.

An :class:`Application` registers services, routes invocations between
them, and closes the loop on each user request: it starts the root span
at the entrypoint service, records the finished trace into the
:class:`~repro.tracing.warehouse.TraceWarehouse`, and logs the
end-to-end response time per request type.
"""

from __future__ import annotations

import bisect
import typing as _t

import networkx as nx
import numpy as np

from repro.app.request import Request
from repro.app.service import Microservice
from repro.faults.resilience import CallError
from repro.sim.engine import Environment
from repro.sim.errors import Interrupt
from repro.sim.events import Event
from repro.sim.process import Process
from repro.tracing.span import Span
from repro.tracing.warehouse import TraceWarehouse


class EndToEndLog:
    """Time-ordered record of finished user requests of one type."""

    def __init__(self) -> None:
        self._times: list[float] = []
        self._latencies: list[float] = []
        self.total = 0

    def record(self, completed_at: float, response_time: float) -> None:
        """Append one completion."""
        self._times.append(completed_at)
        self._latencies.append(response_time)
        self.total += 1

    def window(self, since: float = 0.0, until: float = float("inf")
               ) -> tuple[np.ndarray, np.ndarray]:
        """``(completion_times, response_times)`` in ``[since, until)``."""
        lo = bisect.bisect_left(self._times, since)
        hi = bisect.bisect_left(self._times, until)
        return (np.asarray(self._times[lo:hi]),
                np.asarray(self._latencies[lo:hi]))

    def response_times(self) -> np.ndarray:
        """All recorded response times."""
        return np.asarray(self._latencies)


class Application:
    """A microservices-based application under simulation.

    Args:
        env: simulation environment.
        warehouse: trace storage (a fresh one is created if omitted).
    """

    def __init__(self, env: Environment,
                 warehouse: TraceWarehouse | None = None) -> None:
        self.env = env
        self.warehouse = warehouse or TraceWarehouse()
        self.services: dict[str, Microservice] = {}
        self.entrypoints: dict[str, tuple[str, str]] = {}
        self._process_names: dict[str, str] = {}
        self.latency: dict[str, EndToEndLog] = {}
        self.in_flight = 0
        self.total_submitted = 0
        #: Requests abandoned on an unrecovered CallError, by type.
        self.failed: dict[str, int] = {}
        self.failed_total = 0

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def add_service(self, service: Microservice) -> Microservice:
        """Register a service (name must be unique)."""
        if service.name in self.services:
            raise ValueError(f"duplicate service {service.name!r}")
        service.app = self
        self.services[service.name] = service
        return service

    def service(self, name: str) -> Microservice:
        """Look up a registered service."""
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r} "
                           f"(has: {sorted(self.services)})") from None

    def set_entrypoint(self, request_type: str, service: str,
                       operation: str = "default") -> None:
        """Map a request type to its front-door service/operation."""
        if service not in self.services:
            raise KeyError(f"unknown service {service!r}")
        if operation not in self.services[service].operations:
            raise KeyError(f"service {service!r} has no operation "
                           f"{operation!r}")
        self.entrypoints[request_type] = (service, operation)
        self._process_names[request_type] = f"request:{request_type}"
        self.latency.setdefault(request_type, EndToEndLog())

    def call_graph(self) -> nx.DiGraph:
        """The static service dependency graph (who calls whom)."""
        graph = nx.DiGraph()
        for name, service in self.services.items():
            graph.add_node(name)
            for operation in service.operations.values():
                for call in operation.downstream_calls():
                    graph.add_edge(name, call.service)
        return graph

    def validate(self) -> None:
        """Check every Call targets a registered service/operation."""
        for name, service in self.services.items():
            for operation in service.operations.values():
                for call in operation.downstream_calls():
                    target = self.services.get(call.service)
                    if target is None:
                        raise ValueError(
                            f"{name}.{operation.name} calls unknown "
                            f"service {call.service!r}")
                    if call.operation not in target.operations:
                        raise ValueError(
                            f"{name}.{operation.name} calls unknown "
                            f"operation {call.service}.{call.operation}")
                    if call.via_pool and call.via_pool not in \
                            service.client_pools:
                        raise ValueError(
                            f"{name}.{operation.name} references missing "
                            f"client pool {call.via_pool!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def submit(self, request_type: str) -> tuple[Request, Process]:
        """Inject one user request; returns it plus the process to wait
        on (the process's value is the finished request)."""
        if request_type not in self.entrypoints:
            raise KeyError(f"unknown request type {request_type!r} "
                           f"(has: {sorted(self.entrypoints)})")
        env = self.env
        request = Request(request_type=request_type, issued_at=env._now)
        self.in_flight += 1
        self.total_submitted += 1
        process = Process(env, self._drive(request),
                          name=self._process_names[request_type])
        return request, process

    def submit_batch(self, request_type: str, count: int
                     ) -> list[tuple[Request, Process]]:
        """Inject ``count`` requests at the current instant.

        The request processes bootstrap through a single scheduler
        entry (:meth:`~repro.sim.engine.Environment.schedule_batch`)
        instead of ``count`` individual ones, which is what makes
        population step-ups of tens of thousands of users affordable.
        Processing order and the observed event stream are identical
        to ``count`` consecutive :meth:`submit` calls.
        """
        if request_type not in self.entrypoints:
            raise KeyError(f"unknown request type {request_type!r} "
                           f"(has: {sorted(self.entrypoints)})")
        if count <= 0:
            return []
        env = self.env
        now = env._now
        name = self._process_names[request_type]
        bootstraps: list[Event] = []
        out: list[tuple[Request, Process]] = []
        for _ in range(count):
            request = Request(request_type=request_type, issued_at=now)
            process = Process(env, self._drive(request), name=name,
                              defer_to=bootstraps)
            out.append((request, process))
        self.in_flight += count
        self.total_submitted += count
        env.schedule_batch(bootstraps)
        return out

    def route(self, service_name: str, operation: str, request: Request,
              parent_span: Span | None):
        """Route one invocation to a service (sub-process generator)."""
        service = self.services.get(service_name)
        if service is None:
            raise KeyError(f"unknown service {service_name!r}")
        result = yield from service.handle(request, operation, parent_span)
        return result

    def _drive(self, request: Request):
        service_name, operation = self.entrypoints[request.request_type]
        try:
            # route() inlined (entrypoints are validated at
            # registration): one less generator frame per request.
            root_span = yield from self.services[service_name].handle(
                request, operation, None)
        except CallError as error:
            # A call failed past its resilience policy (or a service
            # was down with none attached): the request is abandoned
            # but the closed loop continues — drivers that yield on
            # the request process must not die with it.
            self._record_failure(request, error)
            return request
        except Interrupt as interrupt:
            # Crash with drop_inflight interrupts victims with a
            # CallError cause; other interrupts (external chaos) keep
            # their original semantics and propagate.
            if isinstance(interrupt.cause, CallError):
                self._record_failure(request, interrupt.cause)
                return request
            raise
        finally:
            self.in_flight -= 1
        request.root_span = root_span
        request.completed_at = self.env._now
        self.latency[request.request_type].record(
            request.completed_at, request.response_time)
        self.warehouse.record(root_span)
        return request

    def _record_failure(self, request: Request, error: CallError) -> None:
        request.failed_at = self.env._now
        request.failure = f"{error.service}: {error.reason}"
        self.failed[request.request_type] = \
            self.failed.get(request.request_type, 0) + 1
        self.failed_total += 1
