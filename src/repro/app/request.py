"""User requests flowing through the microservice application."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.tracing.span import Span

_request_ids = count(1)


@dataclass
class Request:
    """One end-user request (one trace).

    Attributes:
        request_id: unique id, doubles as the trace id.
        request_type: the entrypoint workload class ("cart", "catalogue",
            "read_home_timeline", ...).
        issued_at: time the user (or generator) submitted it.
        completed_at: time the final response left the front-end.
        root_span: the root of the request's call tree once started.
        failed_at: time the request was abandoned because a call
            failed past its resilience policy (``None`` on success).
        failure: short reason string for a failed request.
    """

    request_type: str
    issued_at: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_at: float | None = None
    root_span: Span | None = None
    failed_at: float | None = None
    failure: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the end-to-end response has been delivered."""
        return self.completed_at is not None

    @property
    def response_time(self) -> float:
        """End-to-end response time in seconds."""
        if self.completed_at is None:
            raise ValueError(f"request {self.request_id} is not finished")
        return self.completed_at - self.issued_at
