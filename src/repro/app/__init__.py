"""Microservice application model.

Services with replicas (pods), per-replica CPUs and thread pools, named
client pools, call-graph behaviors, load balancing, and end-to-end
request accounting.
"""

from repro.app.application import Application, EndToEndLog
from repro.app.behavior import Call, Compute, Operation, Parallel, Step
from repro.app.loadbalancer import (
    LeastConnections,
    LoadBalancer,
    RandomChoice,
    RoundRobin,
)
from repro.app.request import Request
from repro.app.service import Microservice, Replica, ServiceMetrics

__all__ = [
    "Application",
    "Call",
    "Compute",
    "EndToEndLog",
    "LeastConnections",
    "LoadBalancer",
    "Microservice",
    "Operation",
    "Parallel",
    "RandomChoice",
    "Replica",
    "Request",
    "RoundRobin",
    "ServiceMetrics",
    "Step",
]
