"""Load-balancing policies for picking a replica.

Kubernetes services spread requests across pod replicas; the policy
matters for the paper's observation that newly-added replicas can be
imbalanced against warm ones (§5.3). Round-robin reproduces that effect;
least-connections avoids it.
"""

from __future__ import annotations

import abc
import typing as _t

import numpy as np

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.app.service import Replica


class LoadBalancer(abc.ABC):
    """Strategy object choosing a replica for each incoming request."""

    @abc.abstractmethod
    def pick(self, replicas: _t.Sequence["Replica"]) -> "Replica":
        """Choose one replica from a non-empty sequence."""


class RoundRobin(LoadBalancer):
    """Cycle through replicas in order (Kubernetes default-ish)."""

    def __init__(self) -> None:
        self._next = 0

    def pick(self, replicas: _t.Sequence["Replica"]) -> "Replica":
        if not replicas:
            raise ValueError("no replicas available")
        replica = replicas[self._next % len(replicas)]
        self._next = (self._next + 1) % len(replicas)
        return replica


class LeastConnections(LoadBalancer):
    """Pick the replica with the fewest in-flight requests."""

    def pick(self, replicas: _t.Sequence["Replica"]) -> "Replica":
        if not replicas:
            raise ValueError("no replicas available")
        return min(replicas, key=lambda r: r.active_requests)


class RandomChoice(LoadBalancer):
    """Uniformly random replica selection."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def pick(self, replicas: _t.Sequence["Replica"]) -> "Replica":
        if not replicas:
            raise ValueError("no replicas available")
        return replicas[int(self._rng.integers(len(replicas)))]
