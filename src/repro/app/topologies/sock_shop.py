"""The Sock Shop e-commerce benchmark topology (paper Fig. 2(i)).

Service graph and soft-resource placement follow the paper:

- **Cart** is SpringBoot-based: an embedded *server thread pool* gates
  its processing concurrency (the soft resource adapted in Figs. 3, 4,
  9(a), 10, 11 and Tables 1–3).
- **Catalogue** is Golang-based: request handling is async (goroutines,
  no server pool) but a *database connection pool* gates its calls to
  catalogue-db (Figs. 1, 9(b)).
- The front-end fans out to Cart and Catalogue for browse requests, so
  either branch can become the critical path (Fig. 5).

CPU demands are calibrated for a laptop-scale simulation: the cluster
saturates at a few hundred requests/second instead of the testbed's few
thousand; the controller dynamics are rate-invariant.
"""

from __future__ import annotations

from repro.app.application import Application
from repro.app.behavior import Call, Compute, Operation, Parallel
from repro.app.service import Microservice
from repro.sim.distributions import LogNormal
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

#: Default per-replica CPU limits (cores) per service.
DEFAULT_CORES = {
    "front-end": 4.0,
    "cart": 2.0,
    "cart-db": 6.0,
    "catalogue": 2.0,
    "catalogue-db": 4.0,
    "user": 2.0,
    "user-db": 2.0,
    "orders": 2.0,
    "orders-db": 2.0,
    "payment": 2.0,
    "shipping": 2.0,
    "queue-master": 2.0,
    "recommender": 2.0,
}

#: Context-switch overhead coefficient used across Sock Shop services.
CPU_OVERHEAD = 0.015


def build_sock_shop(env: Environment, streams: RandomStreams, *,
                    cart_threads: int = 5,
                    cart_cores: float = 2.0,
                    catalogue_cores: float = 2.0,
                    catalogue_db_connections: int = 10,
                    cart_demand_ms: float = 4.0,
                    cart_db_demand_ms: float = 10.0,
                    catalogue_demand_ms: float = 3.0,
                    catalogue_db_demand_ms: float = 8.0,
                    demand_cv: float = 0.6) -> Application:
    """Assemble the Sock Shop application.

    Args:
        env: simulation environment.
        streams: named random streams (one per service is derived).
        cart_threads: initial Cart server thread pool size per replica.
        cart_cores: initial Cart CPU limit.
        catalogue_cores: initial Catalogue CPU limit.
        catalogue_db_connections: initial Catalogue DB connection pool.
        cart_demand_ms / cart_db_demand_ms / catalogue_demand_ms /
            catalogue_db_demand_ms: mean CPU demand per request (ms).
        demand_cv: coefficient of variation for all demand draws.

    Returns:
        A validated :class:`Application` with entrypoints ``cart``,
        ``catalogue``, ``browse`` (parallel Cart+Catalogue, Fig. 5),
        ``login`` and ``order``.
    """
    app = Application(env)

    def svc(name: str, **kwargs) -> Microservice:
        defaults = dict(cores=DEFAULT_CORES[name],
                        cpu_overhead=CPU_OVERHEAD)
        defaults.update(kwargs)
        service = Microservice(env, name, streams.stream(f"{name}.demand"),
                               **defaults)
        return app.add_service(service)

    def demand(mean_ms: float) -> LogNormal:
        return LogNormal(mean=mean_ms / 1000.0, cv=demand_cv)

    front_end = svc("front-end")
    cart = svc("cart", cores=cart_cores, thread_pool_size=cart_threads)
    cart_db = svc("cart-db")
    catalogue = svc("catalogue", cores=catalogue_cores)  # async Golang service
    catalogue_db = svc("catalogue-db")
    user = svc("user", thread_pool_size=30)
    user_db = svc("user-db")
    orders = svc("orders", thread_pool_size=30)
    orders_db = svc("orders-db")
    payment = svc("payment")
    shipping = svc("shipping")
    queue_master = svc("queue-master")
    recommender = svc("recommender")

    catalogue.add_client_pool("db", catalogue_db_connections)

    # --- leaf behaviors -------------------------------------------------
    cart_db.add_operation(Operation("default", [
        Compute(demand(cart_db_demand_ms))]))
    catalogue_db.add_operation(Operation("default", [
        Compute(demand(catalogue_db_demand_ms))]))
    user_db.add_operation(Operation("default", [Compute(demand(1.0))]))
    orders_db.add_operation(Operation("default", [Compute(demand(1.5))]))
    payment.add_operation(Operation("default", [Compute(demand(1.0))]))
    queue_master.add_operation(Operation("default", [Compute(demand(0.8))]))
    recommender.add_operation(Operation("default", [Compute(demand(1.5))]))

    shipping.add_operation(Operation("default", [
        Compute(demand(0.8)),
        Call("queue-master"),
    ]))

    # --- mid-tier behaviors ----------------------------------------------
    cart.add_operation(Operation("default", [
        Compute(demand(cart_demand_ms)),
        Call("cart-db"),
        Compute(demand(cart_demand_ms / 2.0)),
    ]))
    catalogue.add_operation(Operation("default", [
        Compute(demand(catalogue_demand_ms)),
        Call("catalogue-db", via_pool="db"),
        Compute(demand(catalogue_demand_ms / 2.0)),
    ]))
    user.add_operation(Operation("default", [
        Compute(demand(1.0)),
        Call("user-db"),
    ]))
    orders.add_operation(Operation("default", [
        Compute(demand(1.5)),
        Call("user"),
        Call("cart"),
        Call("payment"),
        Call("shipping"),
        Call("orders-db"),
    ]))

    # --- front-end -------------------------------------------------------
    front_end.add_operation(Operation("cart", [
        Compute(demand(0.6)),
        Call("cart"),
        Compute(demand(0.3)),
    ]))
    front_end.add_operation(Operation("catalogue", [
        Compute(demand(0.6)),
        Call("catalogue"),
        Compute(demand(0.3)),
    ]))
    front_end.add_operation(Operation("browse", [
        Compute(demand(0.6)),
        Parallel([Call("cart"), Call("catalogue")]),
        Compute(demand(0.3)),
    ]))
    front_end.add_operation(Operation("login", [
        Compute(demand(0.5)),
        Call("user"),
    ]))
    front_end.add_operation(Operation("order", [
        Compute(demand(0.8)),
        Call("orders"),
        Compute(demand(0.4)),
    ]))

    app.set_entrypoint("cart", "front-end", "cart")
    app.set_entrypoint("catalogue", "front-end", "catalogue")
    app.set_entrypoint("browse", "front-end", "browse")
    app.set_entrypoint("login", "front-end", "login")
    app.set_entrypoint("order", "front-end", "order")
    app.validate()
    return app
