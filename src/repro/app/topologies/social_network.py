"""The DeathStarBench Social Network topology (paper Fig. 2(ii)).

A broadcast-style social network with 36 microservices. The paper's
instrumented soft resource here is the Apache Thrift *ClientPool*:
request connections from the Read-Home-Timeline service to the
Post-Storage service (Figs. 3(e,f), 9(c), 12).

Post Storage's per-request compute is proportional to the number of
posts fetched; :func:`set_request_weight` flips the workload between
*light* (2 posts) and *heavy* (10 posts) to reproduce the paper's
system-state-drift experiments (§2.3, §5.3).
"""

from __future__ import annotations

from repro.app.application import Application
from repro.app.behavior import Call, Compute, Operation, Parallel
from repro.app.service import Microservice
from repro.sim.distributions import LogNormal
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

#: Demand multiplier for the light (2-post) and heavy (10-post) variants
#: of a Read-Home-Timeline request; compute is proportional to the
#: number of posts accessed (§2.3).
LIGHT_POSTS = 2
HEAVY_POSTS = 10

CPU_OVERHEAD = 0.015

#: Number of fan-out search index shards (Index0..IndexN in Fig. 2).
INDEX_SHARDS = 4


def build_social_network(env: Environment, streams: RandomStreams, *,
                         post_storage_connections: int = 10,
                         post_storage_cores: float = 2.0,
                         post_storage_replicas: int = 1,
                         home_timeline_threads: int = 200,
                         post_demand_ms: float = 0.5,
                         demand_cv: float = 0.6) -> Application:
    """Assemble the Social Network application.

    Args:
        env: simulation environment.
        streams: named random streams.
        post_storage_connections: initial ClientPool size on the
            home-timeline service for calls to post-storage.
        post_storage_cores: per-replica CPU limit of post-storage.
        post_storage_replicas: initial post-storage replica count.
        home_timeline_threads: thread pool of the home-timeline service.
        post_demand_ms: CPU demand per post fetched at post-storage.
        demand_cv: coefficient of variation for demand draws.

    Returns:
        A validated :class:`Application` with entrypoints
        ``read_home_timeline``, ``compose_post``, ``read_user_timeline``
        and ``search``.
    """
    app = Application(env)

    def svc(name: str, **kwargs) -> Microservice:
        kwargs.setdefault("cores", 2.0)
        kwargs.setdefault("cpu_overhead", CPU_OVERHEAD)
        service = Microservice(env, name, streams.stream(f"{name}.demand"),
                               **kwargs)
        return app.add_service(service)

    def demand(mean_ms: float) -> LogNormal:
        return LogNormal(mean=mean_ms / 1000.0, cv=demand_cv)

    def store_pair(prefix: str,
                   mongo_demand_ms: float = 0.8
                   ) -> tuple[Microservice, Microservice]:
        memcached = svc(f"{prefix}-memcached", cores=2.0)
        memcached.add_operation(Operation("default", [
            Compute(demand(0.15))]))
        mongodb = svc(f"{prefix}-mongodb", cores=4.0)
        mongodb.add_operation(Operation("default", [
            Compute(demand(mongo_demand_ms))]))
        return memcached, mongodb

    front_end = svc("front-end", cores=4.0)
    home_timeline = svc("home-timeline",
                        thread_pool_size=home_timeline_threads, cores=4.0)
    user_timeline = svc("user-timeline", thread_pool_size=30)
    write_home_timeline = svc("write-home-timeline", thread_pool_size=30)
    post_storage = svc("post-storage", cores=post_storage_cores,
                       replicas=post_storage_replicas)
    compose_post = svc("compose-post", thread_pool_size=40, cores=4.0)
    social_graph = svc("social-graph")
    user_service = svc("user")
    user_tag = svc("user-tag")
    url_shorten = svc("url-shorten")
    text_service = svc("text")
    media = svc("media")
    unique_id = svc("unique-id")
    search = svc("search")
    recommender = svc("recommender")

    # Post fetches dominate the post-storage Mongo's work; its demand is
    # what system-state drift (more posts per request) scales.
    store_pair("post-storage", mongo_demand_ms=1.5)
    store_pair("user-timeline")
    store_pair("social-graph")

    index_names = [f"index{i}" for i in range(INDEX_SHARDS)]
    for name in index_names:
        shard = svc(name)
        shard.add_operation(Operation("default", [Compute(demand(1.2))]))

    home_timeline.add_client_pool("poststorage", post_storage_connections)

    # --- leaves ----------------------------------------------------------
    unique_id.add_operation(Operation("default", [Compute(demand(0.2))]))
    media.add_operation(Operation("default", [Compute(demand(0.8))]))
    user_tag.add_operation(Operation("default", [Compute(demand(0.5))]))
    url_shorten.add_operation(Operation("default", [Compute(demand(0.4))]))
    recommender.add_operation(Operation("default", [Compute(demand(1.0))]))

    text_service.add_operation(Operation("default", [
        Compute(demand(0.6)),
        Parallel([Call("url-shorten"), Call("user-tag")]),
    ]))
    user_service.add_operation(Operation("default", [Compute(demand(0.5))]))

    social_graph.add_operation(Operation("default", [
        Compute(demand(0.5)),
        Call("social-graph-memcached"),
        Call("social-graph-mongodb"),
    ]))

    # Post Storage: cache lookup, then a DB fetch per miss; per-request
    # compute is proportional to the number of posts (scaled by the
    # service-level demand_scale knob, see set_request_weight).
    post_storage.add_operation(Operation("default", [
        Compute(demand(post_demand_ms * LIGHT_POSTS)),
        Call("post-storage-memcached"),
        Call("post-storage-mongodb"),
        Compute(demand(post_demand_ms * LIGHT_POSTS / 2.0)),
    ]))
    post_storage.add_operation(Operation("write", [
        Compute(demand(post_demand_ms * 2)),
        Call("post-storage-mongodb"),
    ]))

    user_timeline.add_operation(Operation("read", [
        Compute(demand(0.6)),
        Call("user-timeline-memcached"),
        Call("user-timeline-mongodb"),
    ]))
    user_timeline.add_operation(Operation("write", [
        Compute(demand(0.5)),
        Call("user-timeline-mongodb"),
    ]))

    home_timeline.add_operation(Operation("read", [
        Compute(demand(0.8)),
        Call("social-graph"),
        Call("post-storage", via_pool="poststorage"),
        Compute(demand(0.4)),
    ]))

    write_home_timeline.add_operation(Operation("default", [
        Compute(demand(0.5)),
        Call("social-graph"),
    ]))

    compose_post.add_operation(Operation("default", [
        Compute(demand(0.8)),
        Parallel([Call("unique-id"), Call("text"), Call("media"),
                  Call("user")]),
        Parallel([Call("post-storage", operation="write"),
                  Call("user-timeline", operation="write"),
                  Call("write-home-timeline")]),
    ]))

    search.add_operation(Operation("default", [
        Compute(demand(0.8)),
        Parallel([Call(name) for name in index_names]),
    ]))

    # --- front-end --------------------------------------------------------
    front_end.add_operation(Operation("read_home_timeline", [
        Compute(demand(0.5)),
        Call("home-timeline", operation="read"),
        Compute(demand(0.2)),
    ]))
    front_end.add_operation(Operation("compose_post", [
        Compute(demand(0.5)),
        Call("compose-post"),
    ]))
    front_end.add_operation(Operation("read_user_timeline", [
        Compute(demand(0.5)),
        Call("user-timeline", operation="read"),
    ]))
    front_end.add_operation(Operation("search", [
        Compute(demand(0.5)),
        Call("search"),
    ]))

    app.set_entrypoint("read_home_timeline", "front-end",
                       "read_home_timeline")
    app.set_entrypoint("compose_post", "front-end", "compose_post")
    app.set_entrypoint("read_user_timeline", "front-end",
                       "read_user_timeline")
    app.set_entrypoint("search", "front-end", "search")
    app.validate()
    return app


def set_request_weight(app: Application, posts: int) -> None:
    """Drift the system state: make each Read-Home-Timeline request fetch
    ``posts`` posts.

    Fetching more posts mostly stresses the *downstream* store — the
    paper observes that "serving heavy requests stresses downstream
    database services, making the Post Storage replicas route more
    requests to downstream services" (§5.3) — so the Mongo demand scales
    with the post count while Post Storage's own compute grows more
    gently. Connections to Post Storage are then held longer per
    request, shifting the optimal ClientPool size upward (Figs. 3(e,f)).

    Use ``posts=LIGHT_POSTS`` (2) or ``posts=HEAVY_POSTS`` (10) for the
    paper's light/heavy variants (§2.3, Fig. 12).
    """
    if posts < 1:
        raise ValueError(f"posts must be >= 1, got {posts}")
    ratio = posts / LIGHT_POSTS
    app.service("post-storage-mongodb").demand_scale = ratio
    app.service("post-storage").demand_scale = ratio ** 0.5
