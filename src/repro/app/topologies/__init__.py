"""Benchmark application topologies (paper Fig. 2)."""

from repro.app.topologies.sock_shop import build_sock_shop
from repro.app.topologies.social_network import (
    HEAVY_POSTS,
    LIGHT_POSTS,
    build_social_network,
    set_request_weight,
)

__all__ = [
    "HEAVY_POSTS",
    "LIGHT_POSTS",
    "build_social_network",
    "build_sock_shop",
    "set_request_weight",
]
