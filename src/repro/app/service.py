"""Microservices, replicas, and request handling.

A :class:`Microservice` owns one or more :class:`Replica` instances
(pods). Each replica has a core-limited CPU and, unless the service is
implemented in an async style (Golang goroutines), a server thread pool
gating its request-processing concurrency. Services may also own named
*client pools* (DB connection pools, RPC client pools) gating their
outbound calls.

Hardware scaling maps onto Kubernetes primitives:

- horizontal (HPA): :meth:`Microservice.scale_replicas`
- vertical (VPA / FIRM): :meth:`Microservice.set_cores`

Soft resource adaptation (what Sora does):

- :meth:`Microservice.set_thread_pool_size` (per replica), and
- :meth:`Microservice.resize_client_pool` (shared across replicas).
"""

from __future__ import annotations

import bisect
import typing as _t

import numpy as np

from repro.app.behavior import (
    Call,
    Choice,
    Compute,
    Hedge,
    Operation,
    Parallel,
    Quorum,
    Step,
)
from repro.app.loadbalancer import LoadBalancer, RoundRobin
from repro.app.request import Request
from repro.faults.resilience import (
    BoundPolicy,
    CallError,
    CallPolicy,
    CallTimeout,
    CircuitOpenError,
    InjectedFailure,
    LoadShedError,
    ServiceUnavailable,
)
from repro.resources.cpu import ProcessorSharingCpu
from repro.resources.pool import SoftResourcePool
from repro.sim.engine import Environment
from repro.sim.errors import Interrupt
from repro.tracing.span import Span

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.app.application import Application
    from repro.faults.injectors import EdgeDisruption
    from repro.sim.process import Process


class ServiceMetrics:
    """Per-service completion log for fine-grained metric extraction.

    Records ``(departure_time, residence_time)`` for every span the
    service finishes, in time order, supporting the goodput/throughput
    window queries the SCG and SCT models need.
    """

    def __init__(self) -> None:
        self._times: list[float] = []
        self._latencies: list[float] = []
        self._processing: list[float] = []
        self.total_completed = 0

    def record(self, departure: float, latency: float,
               processing: float | None = None) -> None:
        """Append one completion (departures arrive in time order).

        ``processing`` is the residence time *excluding* the service's
        own admission-queue wait (defaults to ``latency``); adapters use
        it to tell "slow because waiting" from "slow while processing".
        """
        if processing is None:
            processing = latency
        if self._times and departure < self._times[-1]:
            index = bisect.bisect_right(self._times, departure)
            self._times.insert(index, departure)
            self._latencies.insert(index, latency)
            self._processing.insert(index, processing)
        else:
            self._times.append(departure)
            self._latencies.append(latency)
            self._processing.append(processing)
        self.total_completed += 1

    def completions(self, since: float = 0.0,
                    until: float = float("inf")
                    ) -> tuple[np.ndarray, np.ndarray]:
        """``(departure_times, latencies)`` within ``[since, until)``."""
        lo = bisect.bisect_left(self._times, since)
        hi = bisect.bisect_left(self._times, until)
        return (np.asarray(self._times[lo:hi]),
                np.asarray(self._latencies[lo:hi]))

    def processing_times(self, since: float = 0.0,
                         until: float = float("inf")) -> np.ndarray:
        """Post-admission processing times within ``[since, until)``."""
        lo = bisect.bisect_left(self._times, since)
        hi = bisect.bisect_left(self._times, until)
        return np.asarray(self._processing[lo:hi])

    def throughput(self, since: float, until: float) -> float:
        """Completions per second in the window."""
        if until <= since:
            return 0.0
        lo = bisect.bisect_left(self._times, since)
        hi = bisect.bisect_left(self._times, until)
        return (hi - lo) / (until - since)

    def goodput(self, since: float, until: float, threshold: float) -> float:
        """Completions per second whose residence time met ``threshold``."""
        if until <= since:
            return 0.0
        _times, latencies = self.completions(since, until)
        if latencies.size == 0:
            return 0.0
        return float(np.count_nonzero(latencies <= threshold)) / (
            until - since)

    def prune(self, before: float) -> None:
        """Drop completions older than ``before`` (bounded memory)."""
        cut = bisect.bisect_left(self._times, before)
        if cut:
            del self._times[:cut]
            del self._latencies[:cut]
            del self._processing[:cut]


class Replica:
    """One pod of a microservice: a CPU plus an optional thread pool."""

    def __init__(self, env: Environment, service_name: str, index: int,
                 cores: float, cpu_overhead: float,
                 thread_pool_size: int | None) -> None:
        self.env = env
        self.name = f"{service_name}-{index}"
        self.cpu = ProcessorSharingCpu(
            env, cores=cores, overhead=cpu_overhead, name=f"{self.name}.cpu")
        self.server_pool: SoftResourcePool | None = None
        if thread_pool_size is not None:
            self.server_pool = SoftResourcePool(
                env, capacity=thread_pool_size, name=f"{self.name}.threads")
        self.active_requests = 0
        self.draining = False
        self._active_integral = 0.0
        self._active_since = env.now

    @property
    def concurrency(self) -> int:
        """Requests currently being *processed* (not queued)."""
        if self.server_pool is not None:
            return self.server_pool.in_use
        return self.active_requests

    def request_started(self) -> None:
        """Account one request entering the replica."""
        self._integrate_active()
        self.active_requests += 1

    def request_finished(self) -> None:
        """Account one request leaving the replica."""
        self._integrate_active()
        self.active_requests -= 1

    def active_integral(self) -> float:
        """Cumulative in-flight-request-seconds (mean concurrency via
        differencing — used for async services with no server pool)."""
        self._integrate_active()
        return self._active_integral

    def concurrency_integral(self) -> float:
        """Cumulative processing-concurrency-seconds for this replica."""
        if self.server_pool is not None:
            return self.server_pool.in_use_integral()
        return self.active_integral()

    def _integrate_active(self) -> None:
        now = self.env._now
        dt = now - self._active_since
        if dt > 0.0:
            self._active_integral += self.active_requests * dt
            self._active_since = now

    def __repr__(self) -> str:
        return (f"<Replica {self.name} cores={self.cpu.cores} "
                f"active={self.active_requests}>")


class Microservice:
    """A named, replicated microservice.

    Args:
        env: simulation environment.
        name: service name ("cart", "catalogue-db", ...).
        rng: random generator for this service's demand draws.
        cores: per-replica CPU limit.
        cpu_overhead: context-switch penalty (see
            :class:`~repro.resources.cpu.ProcessorSharingCpu`).
        thread_pool_size: per-replica server thread pool; ``None`` means
            async request handling with no server-side gate (Golang
            style).
        replicas: initial replica count.
        load_balancer: replica selection policy (default round-robin).
    """

    def __init__(self, env: Environment, name: str,
                 rng: np.random.Generator, *, cores: float = 2.0,
                 cpu_overhead: float = 0.0,
                 thread_pool_size: int | None = None, replicas: int = 1,
                 load_balancer: LoadBalancer | None = None) -> None:
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self.env = env
        self.name = name
        self._rng = rng
        self._default_cores = float(cores)
        self._cpu_overhead = float(cpu_overhead)
        self._thread_pool_size = thread_pool_size
        self.load_balancer = load_balancer or RoundRobin()
        self.operations: dict[str, Operation] = {}
        self.client_pools: dict[str, SoftResourcePool] = {}
        self.metrics = ServiceMetrics()
        self.app: "Application | None" = None
        #: Multiplier applied to every sampled CPU demand — the hook used
        #: to model system-state drift (light -> heavy requests, §2.3).
        self.demand_scale = 1.0
        # Per-distribution batch buffers (id(dist) -> [values, cursor]):
        # demand draws are refilled 256 at a time, which consumes this
        # service's dedicated stream exactly as single draws would.
        self._demand_buffers: dict[int, list] = {}

        # Fault/resilience state (see repro.faults). All of it defaults
        # to "off", in which case the request path pays only attribute
        # checks — no extra events, no extra draws — so runs without
        # faults stay byte-identical to runs before this layer existed.
        self._down = False
        self._track_inflight = False
        self._inflight: set["Process"] = set()
        self._call_policies: dict[str, BoundPolicy] = {}
        self._edge_faults: dict[str, list["EdgeDisruption"]] = {}
        self._call_layer_active = False

        self._replica_counter = 0
        self.replicas: list[Replica] = []
        self._retired_busy = 0.0
        self._retired_capacity = 0.0
        self._retired_concurrency = 0.0
        for _ in range(replicas):
            self._add_replica()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_operation(self, operation: Operation) -> "Microservice":
        """Register a behavior; returns self for chaining."""
        self.operations[operation.name] = operation
        return self

    def add_client_pool(self, name: str, capacity: int) -> SoftResourcePool:
        """Create a named client pool shared by all replicas."""
        if name in self.client_pools:
            raise ValueError(f"client pool {name!r} already exists")
        pool = SoftResourcePool(self.env, capacity=capacity,
                                name=f"{self.name}.{name}")
        self.client_pools[name] = pool
        return pool

    def client_pool(self, name: str) -> SoftResourcePool:
        """Look up a client pool by name."""
        return self.client_pools[name]

    # ------------------------------------------------------------------
    # Hardware scaling
    # ------------------------------------------------------------------
    @property
    def replica_count(self) -> int:
        """Active (non-draining) replicas."""
        return len(self.replicas)

    @property
    def cores_per_replica(self) -> float:
        """Current per-replica CPU limit."""
        return self._default_cores

    def scale_replicas(self, count: int) -> None:
        """Horizontal scaling: grow or (gracefully) shrink the replica
        set. Removed replicas finish their in-flight requests but stop
        receiving new ones."""
        if count < 1:
            raise ValueError(f"need at least one replica, got {count}")
        while len(self.replicas) < count:
            self._add_replica()
        while len(self.replicas) > count:
            replica = self.replicas.pop()
            replica.draining = True
            self._retired_busy += replica.cpu.busy_core_seconds()
            self._retired_capacity += replica.cpu.capacity_core_seconds()
            self._retired_concurrency += replica.concurrency_integral()

    def set_cores(self, cores: float) -> None:
        """Vertical scaling: change the CPU limit of every replica."""
        self._default_cores = float(cores)
        for replica in self.replicas:
            replica.cpu.set_cores(cores)

    # ------------------------------------------------------------------
    # Soft resource adaptation
    # ------------------------------------------------------------------
    @property
    def thread_pool_size(self) -> int | None:
        """Per-replica server thread pool size (``None`` = unbounded)."""
        return self._thread_pool_size

    def set_thread_pool_size(self, size: int) -> None:
        """Resize every replica's server thread pool online."""
        if self._thread_pool_size is None:
            raise ValueError(
                f"service {self.name!r} has no server thread pool")
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._thread_pool_size = size
        for replica in self.replicas:
            assert replica.server_pool is not None
            replica.server_pool.resize(size)

    def resize_client_pool(self, name: str, capacity: int) -> None:
        """Resize a named client pool online."""
        self.client_pools[name].resize(capacity)

    # ------------------------------------------------------------------
    # Faults & resilience (see repro.faults)
    # ------------------------------------------------------------------
    @property
    def down(self) -> bool:
        """Whether the service is crashed (refusing all invocations)."""
        return self._down

    def crash(self, *, drop_inflight: bool = False) -> int:
        """Take the service down; every new invocation raises
        :class:`~repro.faults.resilience.ServiceUnavailable`.

        With ``drop_inflight`` the requests currently inside the
        service are interrupted and fail (requires
        :meth:`track_inflight` to have been armed before they
        entered); without it they drain normally. Returns the number
        of requests dropped.
        """
        self._down = True
        if not drop_inflight:
            return 0
        cause = ServiceUnavailable(self.name, "crashed (in-flight drop)")
        victims = [proc for proc in self._inflight if proc.is_alive]
        for proc in victims:
            proc.interrupt(cause=cause)
        return len(victims)

    def restore(self) -> None:
        """Bring a crashed service back online."""
        self._down = False

    def track_inflight(self) -> None:
        """Arm per-request process tracking (needed by drop-mode
        crashes; off by default to keep the request path pure)."""
        self._track_inflight = True

    def set_call_policy(self, callee: str, policy: CallPolicy,
                        rng: np.random.Generator | None = None) -> None:
        """Attach a resilience policy to this service's calls to
        ``callee``.

        Args:
            callee: target service name of the guarded edge.
            policy: timeout/retry/breaker/shedding configuration.
            rng: dedicated stream for retry-backoff jitter — pass
                ``streams.stream(f"resilience.{self.name}.{callee}")``
                so replay fingerprints stay stable. Without it,
                backoff is deterministic (no jitter).
        """
        self._call_policies[callee] = BoundPolicy(policy=policy, rng=rng)
        self._call_layer_active = True

    def call_policy_stats(self, callee: str) -> dict[str, int]:
        """Runtime counters of the policy guarding calls to ``callee``."""
        return self._call_policies[callee].stats

    def breaker_states(self) -> dict[str, str]:
        """Circuit-breaker state per guarded callee edge.

        ``callee -> "closed" | "open" | "half-open"``, only for edges
        whose policy actually configures a breaker. The telemetry pump
        samples this into ``breaker.<caller>-><callee>`` series.
        """
        return {callee: bound.breaker.state
                for callee, bound in self._call_policies.items()
                if bound.breaker is not None}

    def add_edge_disruption(self, callee: str,
                            disruption: "EdgeDisruption") -> None:
        """Install an active edge fault on calls to ``callee``
        (used by :class:`~repro.faults.injectors.FaultInjector`)."""
        self._edge_faults.setdefault(callee, []).append(disruption)
        self._call_layer_active = True

    def remove_edge_disruption(self, callee: str,
                               disruption: "EdgeDisruption") -> None:
        """Remove a previously installed edge fault (no-op if absent)."""
        active = self._edge_faults.get(callee)
        if active is None:
            return
        if disruption in active:
            active.remove(disruption)
        if not active:
            del self._edge_faults[callee]
        self._call_layer_active = bool(self._call_policies
                                       or self._edge_faults)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def server_concurrency(self) -> int:
        """Instantaneous processing concurrency across replicas."""
        return sum(replica.concurrency for replica in self.replicas)

    def server_concurrency_integral(self) -> float:
        """Cumulative processing-concurrency-seconds across replicas
        (including retired ones); difference over a window for the mean
        concurrency the SCG model samples."""
        return self._retired_concurrency + sum(
            replica.concurrency_integral() for replica in self.replicas)

    def server_pool_capacity(self) -> int | None:
        """Aggregate thread pool allocation (``None`` if unbounded)."""
        if self._thread_pool_size is None:
            return None
        return self._thread_pool_size * len(self.replicas)

    def queued_requests(self) -> int:
        """Requests waiting for a server thread across replicas."""
        return sum(r.server_pool.queue_length for r in self.replicas
                   if r.server_pool is not None)

    def cpu_totals(self) -> tuple[float, float]:
        """``(busy_core_seconds, capacity_core_seconds)`` cumulative over
        all replicas, including retired ones. Monitors difference these
        across a window to obtain utilization."""
        busy = self._retired_busy
        capacity = self._retired_capacity
        for replica in self.replicas:
            busy += replica.cpu.busy_core_seconds()
            capacity += replica.cpu.capacity_core_seconds()
        return busy, capacity

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Request, operation_name: str = "default",
               parent_span: Span | None = None):
        """Process one invocation (a simulation sub-process).

        Returns the finished :class:`Span` as the generator's value.
        """
        operation = self.operations.get(operation_name)
        if operation is None:
            raise KeyError(
                f"service {self.name!r} has no operation "
                f"{operation_name!r} (has: {sorted(self.operations)})")
        if self._down:
            raise ServiceUnavailable(self.name, "crashed")
        env = self.env
        tracked = None
        if self._track_inflight:
            tracked = env.active_process
            if tracked is not None:
                self._inflight.add(tracked)
        replica = self.load_balancer.pick(self.replicas)
        span = Span(request.request_id, self.name, operation_name,
                    arrival=env._now, parent=parent_span,
                    replica=replica.name, span_id=next(env._span_ids))
        replica.request_started()
        pool_request = None
        try:
            if replica.server_pool is not None:
                pool_request = replica.server_pool.acquire()
                try:
                    yield pool_request
                except BaseException:
                    # Abandoned while queued (e.g. interrupted): the
                    # pending request must be cancelled or its eventual
                    # grant would leak a token forever.
                    if pool_request.granted_at is None:
                        replica.server_pool.cancel(pool_request)
                        pool_request = None
                    raise
            span.started = env._now
            for step in operation.steps:
                # Compute and pool-less Call cover nearly every step in
                # the built-in topologies; dispatching them here avoids
                # one to two sub-generator frames per step, which the
                # whole yield-from chain pays on every resume.
                if isinstance(step, Compute):
                    yield replica.cpu.submit(
                        self._sample_demand(step.demand)
                        * self.demand_scale)
                elif isinstance(step, Call) and step.via_pool is None \
                        and not self._call_layer_active:
                    app = self.app
                    if app is None:
                        raise RuntimeError(
                            f"service {self.name!r} is not attached "
                            f"to an application")
                    target = app.services.get(step.service)
                    if target is None:
                        raise KeyError(
                            f"unknown service {step.service!r}")
                    yield from target.handle(request, step.operation,
                                             span)
                else:
                    yield from self._execute(replica, step, request, span)
        except Interrupt:
            # Cancelled mid-flight (quorum/hedge straggler, timeout):
            # mark the span so exporters and tail samplers can tell
            # partial work from natural completion. The finally below
            # still stamps a valid departure at the interrupt time.
            span.cancelled = True
            raise
        finally:
            if tracked is not None:
                self._inflight.discard(tracked)
            if pool_request is not None and \
                    pool_request.granted_at is not None:
                assert replica.server_pool is not None
                replica.server_pool.release()
            replica.request_finished()
            departure = env._now
            span.departure = departure
            self.metrics.record(departure, departure - span.arrival,
                                departure - (span.started
                                             if span.started is not None
                                             else span.arrival))
        return span

    def _sample_demand(self, dist) -> float:
        """One demand draw through the per-distribution batch buffer."""
        entry = self._demand_buffers.get(id(dist))
        if entry is None:
            # Keeping ``dist`` in the entry pins the object, so its id
            # cannot be recycled while the buffer exists.
            entry = [dist.sample_batch(self._rng, 256), 0, dist]
            self._demand_buffers[id(dist)] = entry
        cursor = entry[1]
        if cursor == 256:
            entry[0] = dist.sample_batch(self._rng, 256)
            cursor = 0
        entry[1] = cursor + 1
        return entry[0][cursor]

    def _execute(self, replica: Replica, step: Step, request: Request,
                 span: Span):
        if isinstance(step, Compute):
            demand = self._sample_demand(step.demand) * self.demand_scale
            yield replica.cpu.submit(demand)
        elif isinstance(step, Call):
            yield from self._invoke(step, request, span)
        elif isinstance(step, Parallel):
            branches = [
                self.env.process(self._invoke(call, request, span),
                                 name=f"{self.name}->{call.service}")
                for call in step.calls
            ]
            yield self.env.all_of(branches)
        elif isinstance(step, Quorum):
            yield from self._quorum(step, request, span)
        elif isinstance(step, Hedge):
            yield from self._hedge(step, request, span)
        elif isinstance(step, Choice):
            weights = step.weights_at(self.env._now)
            total = sum(weights)
            draw = self._rng.random() * total
            cumulative = 0.0
            branch = step.branches[-1]
            for steps, weight in zip(step.branches, weights):
                cumulative += weight
                if draw < cumulative:
                    branch = steps
                    break
            for sub in branch:
                yield from self._execute(replica, sub, request, span)
        else:  # pragma: no cover - Operation validates step types
            raise TypeError(f"unknown step {step!r}")

    def _attempt(self, call: Call, request: Request, span: Span):
        """One cancellable branch of a Quorum/Hedge step.

        Runs as its own process; application-layer failures (including
        cancellation interrupts from the coordinator) are converted to
        an ``(ok, payload)`` value so the coordinating step can count
        successes without the process ever dying unconsumed.
        """
        try:
            result = yield from self._invoke(call, request, span)
        except CallError as error:
            return (False, error)
        except Interrupt as interrupt:
            if isinstance(interrupt.cause, CallError):
                return (False, interrupt.cause)
            raise
        return (True, result)

    def _quorum(self, step: Quorum, request: Request, span: Span):
        """Run a k-of-n quorum: spawn every member, wait for ``k``
        successes, then cancel the stragglers (their subtrees are
        truncated). Fails with the last member error once more than
        ``n - k`` members have failed."""
        env = self.env
        branches = [
            env.process(self._attempt(call, request, span),
                        name=f"{self.name}->{call.service}")
            for call in step.calls
        ]
        pending = list(branches)
        successes = 0
        last_error: CallError | None = None
        try:
            # Stop as soon as the quorum is met, or can no longer be
            # met even if every still-pending member succeeds.
            while successes < step.k and \
                    successes + len(pending) >= step.k:
                yield env.any_of(pending)
                still = []
                for proc in pending:
                    if proc.processed:
                        ok, payload = _t.cast(tuple, proc.value)
                        if ok:
                            successes += 1
                        else:
                            last_error = payload
                    else:
                        still.append(proc)
                pending = still
        finally:
            cause = CallError(self.name, "quorum resolved")
            for proc in pending:
                if proc.is_alive:
                    proc.interrupt(cause=cause)
        if successes < step.k:
            if last_error is None:  # pragma: no cover - defensive
                last_error = CallError(self.name, "quorum not met")
            raise last_error

    def _hedge(self, step: Hedge, request: Request, span: Span):
        """Run a hedged call: fire the primary, and if it is still in
        flight after the hedge delay fire an identical duplicate; the
        first success wins and the loser is cancelled."""
        env = self.env
        call = step.call
        procs = [env.process(self._attempt(call, request, span),
                             name=f"{self.name}->{call.service}")]
        try:
            yield env.any_of((procs[0], env.timeout(step.after)))
            if not procs[0].processed:
                procs.append(env.process(
                    self._attempt(call, request, span),
                    name=f"{self.name}->{call.service}#hedge"))
            winner: object = None
            won = False
            last_error: CallError | None = None
            pending = []
            for proc in procs:
                if proc.processed:
                    ok, payload = _t.cast(tuple, proc.value)
                    if ok:
                        winner, won = payload, True
                    else:
                        last_error = payload
                else:
                    pending.append(proc)
            while not won and pending:
                yield env.any_of(pending)
                still = []
                for proc in pending:
                    if proc.processed:
                        ok, payload = _t.cast(tuple, proc.value)
                        if ok and not won:
                            winner, won = payload, True
                        elif not ok:
                            last_error = payload
                    else:
                        still.append(proc)
                pending = still
            if not won:
                if last_error is None:  # pragma: no cover - defensive
                    last_error = CallError(call.service, "hedge failed")
                raise last_error
            return winner
        finally:
            cause = CallError(self.name, "hedge resolved")
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt(cause=cause)

    def _invoke(self, call: Call, request: Request, span: Span):
        if self.app is None:
            raise RuntimeError(
                f"service {self.name!r} is not attached to an application")
        if self._call_layer_active:
            bound = self._call_policies.get(call.service)
            faults = self._edge_faults.get(call.service)
            if bound is not None or faults is not None:
                result = yield from self._invoke_guarded(
                    call, request, span, bound, faults)
                return result
        pool = self.client_pools.get(call.via_pool) if call.via_pool else None
        pool_request = None
        if pool is not None:
            pool_request = pool.acquire()
            try:
                yield pool_request
            except BaseException:
                if pool_request.granted_at is None:
                    pool.cancel(pool_request)
                else:
                    # Interrupted in the same tick the grant landed
                    # (quorum/hedge cancellation): the token is ours
                    # and nothing downstream will release it.
                    pool.release()
                pool_request = None
                raise
        # Application.route() inlined: one less generator frame per hop.
        target = self.app.services.get(call.service)
        if target is None:
            raise KeyError(f"unknown service {call.service!r}")
        try:
            result = yield from target.handle(request, call.operation, span)
        finally:
            if pool_request is not None and \
                    pool_request.granted_at is not None:
                pool.release()
        return result

    def _invoke_guarded(self, call: Call, request: Request, span: Span,
                        bound: BoundPolicy | None,
                        faults: "list[EdgeDisruption] | None"):
        """Slow-path invoke for edges with a resilience policy and/or
        an active injected fault (see :mod:`repro.faults`).

        Per attempt: breaker/shedding gate, client-pool admission,
        injected edge latency/failure, then the call itself (deadline-
        bounded when the policy has a timeout). Downstream failures —
        including interrupts caused by the callee dropping us — are
        retried per the policy; exhaustion either degrades (returns
        ``None``) or raises the last :class:`CallError`.
        """
        assert self.app is not None
        env = self.env
        target = self.app.services.get(call.service)
        if target is None:
            raise KeyError(f"unknown service {call.service!r}")
        pool = self.client_pools.get(call.via_pool) if call.via_pool else None
        policy = bound.policy if bound is not None else None
        breaker = bound.breaker if bound is not None else None
        attempts = policy.max_attempts if policy is not None else 1
        last_error: CallError | None = None
        for attempt in range(attempts):
            if breaker is not None and not breaker.allow(env._now):
                assert bound is not None
                bound.stats["short_circuited"] += 1
                last_error = CircuitOpenError(call.service, "circuit open")
                break
            if policy is not None and policy.shed_queue_limit is not None \
                    and pool is not None \
                    and pool.queue_length >= policy.shed_queue_limit:
                assert bound is not None
                bound.stats["shed"] += 1
                last_error = LoadShedError(call.service,
                                           "client pool saturated")
                break
            if attempt > 0:
                assert bound is not None and policy is not None \
                    and policy.retry is not None
                bound.stats["retries"] += 1
                delay = policy.retry.backoff(attempt - 1, bound.rng)
                if delay > 0.0:
                    yield env.timeout(delay)
            if bound is not None:
                bound.stats["attempts"] += 1
            pool_request = None
            try:
                if pool is not None:
                    pool_request = pool.acquire()
                    try:
                        yield pool_request
                    except BaseException:
                        if pool_request.granted_at is None:
                            pool.cancel(pool_request)
                            pool_request = None
                        raise
                if faults:
                    for disruption in tuple(faults):
                        extra = disruption.sample_latency()
                        if extra > 0.0:
                            yield env.timeout(extra)
                        if disruption.sample_failure():
                            if bound is not None:
                                bound.stats["injected"] += 1
                            raise InjectedFailure(
                                call.service,
                                "injected connection failure")
                if policy is not None and policy.timeout is not None:
                    result = yield from self._call_with_timeout(
                        target, call, request, span, policy.timeout,
                        bound)
                else:
                    result = yield from target.handle(
                        request, call.operation, span)
            except CallError as error:
                last_error = error
                if breaker is not None:
                    breaker.record_failure(env._now)
                continue
            except Interrupt as interrupt:
                cause = interrupt.cause
                if isinstance(cause, CallError) and \
                        cause.service == call.service:
                    # The callee dropped us mid-call (crash with
                    # drop_inflight): retryable at this layer.
                    last_error = cause
                    if breaker is not None:
                        breaker.record_failure(env._now)
                    continue
                raise
            finally:
                if pool_request is not None and \
                        pool_request.granted_at is not None:
                    pool.release()
            if breaker is not None:
                breaker.record_success()
            if bound is not None:
                bound.stats["successes"] += 1
            return result
        if bound is not None:
            bound.stats["failures"] += 1
        assert last_error is not None
        if policy is not None and policy.degrade:
            assert bound is not None
            bound.stats["degraded"] += 1
            return None
        raise last_error

    def _call_with_timeout(self, target: "Microservice", call: Call,
                           request: Request, span: Span, timeout: float,
                           bound: BoundPolicy | None):
        """Run one call attempt under a deadline.

        The attempt runs as a child process so the deadline can cut it
        loose: on expiry the child is interrupted (its finally blocks
        release any held pool tokens) and :class:`CallTimeout` is
        raised for the retry loop to handle.
        """
        env = self.env
        proc = env.process(target.handle(request, call.operation, span),
                           name=f"{self.name}->{call.service}")
        condition = env.any_of((proc, env.timeout(timeout)))
        try:
            yield condition
        except BaseException as error:
            if condition.triggered and not condition.ok and \
                    condition.value is error:
                # The child failed before the deadline; the condition
                # forwarded (and defused) its exception.
                if isinstance(error, Interrupt) and \
                        isinstance(error.cause, CallError):
                    raise error.cause from None
                raise
            # The caller itself was aborted while waiting: cut the
            # child loose and defuse the condition — nobody is left to
            # consume a failure it may still forward.
            condition.defused = True
            if proc.is_alive:
                proc.interrupt(cause=CallTimeout(call.service,
                                                 "caller aborted"))
            raise
        if proc.triggered:
            if proc.ok:
                return proc.value
            # Lost race: the child failed in the same timestep the
            # deadline fired; defuse it and surface the failure.
            proc.defused = True
            error = _t.cast(BaseException, proc.value)
            if isinstance(error, Interrupt) and \
                    isinstance(error.cause, CallError):
                raise error.cause from None
            raise error
        if bound is not None:
            bound.stats["timeouts"] += 1
        proc.interrupt(cause=CallTimeout(call.service,
                                         f"no response in {timeout:g}s"))
        raise CallTimeout(call.service, f"no response in {timeout:g}s")

    def __repr__(self) -> str:
        return (f"<Microservice {self.name!r} replicas={self.replica_count} "
                f"cores={self._default_cores} "
                f"threads={self._thread_pool_size}>")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add_replica(self) -> Replica:
        replica = Replica(self.env, self.name, self._replica_counter,
                          cores=self._default_cores,
                          cpu_overhead=self._cpu_overhead,
                          thread_pool_size=self._thread_pool_size)
        self._replica_counter += 1
        self.replicas.append(replica)
        return replica
