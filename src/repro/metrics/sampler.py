"""Fine-grained online samplers.

The SCG/SCT models consume ``<concurrency, goodput>`` pairs sampled at a
fixed interval (100 ms by default, §3.2 / Table 1). The samplers here
are simulation processes that poll live objects and keep a bounded
time-indexed record that window queries slice efficiently.
"""

from __future__ import annotations

import logging
import typing as _t

import numpy as np

from repro.sim.engine import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs import Observability

logger = logging.getLogger(__name__)


class TimeSeries:
    """An append-only time series with window slicing.

    Samples live in preallocated numpy buffers (doubled on overflow), so
    :meth:`window` is a pair of ``searchsorted`` calls plus two O(1)
    array views — no per-query list-to-array conversion. Pruning
    advances a start offset without moving data, which keeps previously
    returned views valid; dead space is reclaimed at the next growth.
    """

    __slots__ = ("_times", "_values", "_start", "_end")

    def __init__(self, capacity: int = 256) -> None:
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._start = 0  # first live sample
        self._end = 0    # one past the last live sample

    def append(self, time: float, value: float) -> None:
        """Record one observation (times must be non-decreasing)."""
        end = self._end
        if end > self._start and time < self._times[end - 1]:
            raise ValueError(
                f"time {time} precedes last sample {self._times[end - 1]}")
        if end == self._times.shape[0]:
            self._grow()
            end = self._end
        self._times[end] = time
        self._values[end] = value
        self._end = end + 1

    def _grow(self) -> None:
        """Move live samples into fresh buffers at least twice their
        size (fresh, never shifted in place, so outstanding views from
        :meth:`window` keep their data)."""
        live = self._end - self._start
        capacity = max(256, 2 * live)
        times = np.empty(capacity, dtype=np.float64)
        values = np.empty(capacity, dtype=np.float64)
        times[:live] = self._times[self._start:self._end]
        values[:live] = self._values[self._start:self._end]
        self._times, self._values = times, values
        self._start, self._end = 0, live

    def window(self, since: float = 0.0, until: float = float("inf")
               ) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` with ``since <= t < until`` (read-only
        views onto the live buffer)."""
        times = self._times
        lo = int(np.searchsorted(times[self._start:self._end], since,
                                 side="left")) + self._start
        hi = int(np.searchsorted(times[self._start:self._end], until,
                                 side="left")) + self._start
        return times[lo:hi], self._values[lo:hi]

    def latest(self) -> tuple[float, float]:
        """The most recent ``(time, value)``."""
        if self._end == self._start:
            raise ValueError("empty time series")
        return (float(self._times[self._end - 1]),
                float(self._values[self._end - 1]))

    def prune(self, before: float) -> None:
        """Drop samples older than ``before``."""
        self._start += int(np.searchsorted(
            self._times[self._start:self._end], before, side="left"))

    def state_dict(self) -> dict:
        """JSON-ready exact state (live samples only).

        Floats survive a JSON round trip bit-exactly (``repr`` is the
        shortest exact representation), which is what the audit
        journal's checkpoint compaction relies on.
        """
        return {
            "times": self._times[self._start:self._end].tolist(),
            "values": self._values[self._start:self._end].tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TimeSeries":
        """Inverse of :meth:`state_dict`."""
        series = cls(capacity=max(256, len(state["times"])))
        for time, value in zip(state["times"], state["values"]):
            series.append(float(time), float(value))
        return series

    def __len__(self) -> int:
        return self._end - self._start


class IntervalSampler:
    """Polls a callable every ``interval`` seconds into a TimeSeries.

    Args:
        env: simulation environment.
        probe: zero-argument callable returning the current value.
        interval: sampling period in seconds.
        name: label for debugging.
    """

    def __init__(self, env: Environment, probe: _t.Callable[[], float],
                 interval: float = 0.1, name: str = "sampler") -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.probe = probe
        self.interval = interval
        self.name = name
        self.series = TimeSeries()
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name=f"sampler:{self.name}")

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._running = False

    def _loop(self):
        while self._running:
            self.series.append(self.env.now, float(self.probe()))
            yield self.env.timeout(self.interval)


class ConcurrencyGoodputSampler:
    """Samples ``<Q_n, GP_n>`` pairs at a fixed granularity (§3.2).

    Every tick it records the *mean* concurrency ``Q`` of the monitored
    soft resource over the elapsed interval (by differencing a
    cumulative concurrency-seconds integral) and the goodput ``GP`` over
    the same interval — completions whose residence time met the
    (possibly time-varying) response-time threshold, as a rate in
    requests/second. The threshold provider makes the same sampler serve
    both the SCG model (propagated deadline) and the SCT baseline
    (``inf``: goodput degenerates to throughput).

    Args:
        env: simulation environment.
        concurrency_integral: returns cumulative concurrency-seconds up
            to now; the sampler differences consecutive readings.
        completion_source: ``(since, until) -> np.ndarray`` of residence
            times for completions in the window (e.g. a closure over
            :meth:`ServiceMetrics.completions`).
        threshold_provider: returns the current RT threshold in seconds.
        interval: sampling granularity (default 100 ms).
        obs: observability scope for tick counters (``None`` disables;
            the per-tick cost of an enabled scope is one truthiness
            check plus a counter increment).
    """

    def __init__(self, env: Environment,
                 concurrency_integral: _t.Callable[[], float],
                 completion_source: _t.Callable[[float, float], np.ndarray],
                 threshold_provider: _t.Callable[[], float],
                 interval: float = 0.1, name: str = "scg-sampler",
                 obs: "Observability | None" = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.concurrency_integral = concurrency_integral
        self.completion_source = completion_source
        self.threshold_provider = threshold_provider
        self.interval = interval
        self.name = name
        self.obs = obs
        self.concurrency = TimeSeries()
        self.goodput = TimeSeries()
        self.throughput = TimeSeries()
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name=f"sampler:{self.name}")

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._running = False

    def pairs(self, since: float = 0.0, until: float = float("inf"),
              use_threshold: bool = True
              ) -> tuple[np.ndarray, np.ndarray]:
        """``(Q, GP)`` sample pairs in the window (or ``(Q, TP)`` when
        ``use_threshold`` is false)."""
        _t1, concurrency = self.concurrency.window(since, until)
        output = self.goodput if use_threshold else self.throughput
        _t2, rates = output.window(since, until)
        size = min(len(concurrency), len(rates))
        return concurrency[:size], rates[:size]

    def prune(self, before: float) -> None:
        """Drop samples older than ``before``."""
        self.concurrency.prune(before)
        self.goodput.prune(before)
        self.throughput.prune(before)

    def _loop(self):
        last = self.env.now
        last_integral = float(self.concurrency_integral())
        obs = self.obs
        counter = (obs.registry.counter("sampler.ticks")
                   if obs else None)
        while self._running:
            yield self.env.timeout(self.interval)
            now = self.env.now
            elapsed = now - last
            if elapsed <= 0.0:
                # A zero-length interval carries no rate information
                # (can only arise from same-timestamp wakeups); skip
                # rather than divide by zero.
                logger.warning("%s: zero-length sampling interval at "
                               "t=%.6f; tick skipped", self.name, now)
                continue
            latencies = np.asarray(self.completion_source(last, now))
            threshold = self.threshold_provider()
            good = float(np.count_nonzero(latencies <= threshold))
            total = float(latencies.size)
            integral = float(self.concurrency_integral())
            self.concurrency.append(
                now, (integral - last_integral) / elapsed)
            self.goodput.append(now, good / elapsed)
            self.throughput.append(now, total / elapsed)
            last = now
            last_integral = integral
            if counter is not None:
                counter.inc()
