"""Fine-grained performance metrics: samplers, summaries, MAPE."""

from repro.metrics.mape import mape
from repro.metrics.sampler import (
    ConcurrencyGoodputSampler,
    IntervalSampler,
    TimeSeries,
)
from repro.metrics.summary import (
    GoodputSplit,
    LatencySummary,
    bucketed_percentile,
    bucketed_rate,
    goodput_split,
    response_time_histogram,
)

__all__ = [
    "ConcurrencyGoodputSampler",
    "GoodputSplit",
    "IntervalSampler",
    "LatencySummary",
    "TimeSeries",
    "bucketed_percentile",
    "bucketed_rate",
    "goodput_split",
    "mape",
    "response_time_histogram",
]
