"""Latency summaries: percentiles, goodput/badput, bucketed series.

Implements the paper's simplified SLA model (§2.3): requests whose
end-to-end response time is at or below a threshold count as *goodput*;
the rest are *badput*; their sum is the classic throughput.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a set of response times (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: _t.Sequence[float] | np.ndarray
                    ) -> "LatencySummary":
        """Summarize ``values`` (empty input yields all-zero summary)."""
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                       maximum=0.0)
        return cls(
            count=int(array.size),
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            maximum=float(array.max()),
        )

    def scaled(self, factor: float) -> "LatencySummary":
        """Unit conversion helper (e.g. seconds -> milliseconds)."""
        return LatencySummary(
            count=self.count, mean=self.mean * factor,
            p50=self.p50 * factor, p95=self.p95 * factor,
            p99=self.p99 * factor, maximum=self.maximum * factor)


@dataclass(frozen=True)
class GoodputSplit:
    """Goodput/badput decomposition over a window (rates in req/s)."""

    goodput: float
    badput: float
    threshold: float

    @property
    def throughput(self) -> float:
        """Total completion rate: goodput + badput."""
        return self.goodput + self.badput


def goodput_split(latencies: _t.Sequence[float] | np.ndarray,
                  threshold: float, duration: float) -> GoodputSplit:
    """Split completions into goodput and badput rates.

    Args:
        latencies: response times of completions in the window.
        threshold: the SLA response-time threshold (seconds).
        duration: window length (seconds).
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    array = np.asarray(latencies, dtype=float)
    good = int(np.count_nonzero(array <= threshold))
    bad = int(array.size - good)
    return GoodputSplit(goodput=good / duration, badput=bad / duration,
                        threshold=threshold)


def bucketed_rate(times: np.ndarray, *, interval: float, since: float,
                  until: float,
                  predicate: np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Event rate per fixed-width bucket.

    Args:
        times: event timestamps (sorted or not).
        interval: bucket width in seconds.
        since/until: series extent (buckets cover ``[since, until)``).
        predicate: optional boolean mask — only counted events.

    Returns:
        ``(bucket_centers, rates)`` arrays.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if until <= since:
        raise ValueError(f"empty window [{since}, {until})")
    times = np.asarray(times, dtype=float)
    if predicate is not None:
        times = times[np.asarray(predicate, dtype=bool)]
    edges = np.arange(since, until + interval, interval)
    counts, _ = np.histogram(times, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / interval


def bucketed_percentile(times: np.ndarray, values: np.ndarray, *,
                        interval: float, since: float, until: float,
                        q: float = 95.0
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Per-bucket percentile of ``values`` (e.g. RT over time plots).

    Empty buckets yield NaN so plots show gaps rather than zeros.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    edges = np.arange(since, until + interval, interval)
    centers = (edges[:-1] + edges[1:]) / 2.0
    result = np.full(centers.shape, np.nan)
    indexes = np.digitize(times, edges) - 1
    for bucket in range(len(centers)):
        mask = indexes == bucket
        if mask.any():
            result[bucket] = np.percentile(values[mask], q)
    return centers, result


def response_time_histogram(latencies: np.ndarray, *, bin_width: float,
                            maximum: float
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Frequency histogram of response times (paper Fig. 4 semi-log).

    Returns ``(bin_centers, counts)``; latencies above ``maximum`` land
    in the last bin.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    array = np.clip(np.asarray(latencies, dtype=float), 0.0, maximum)
    edges = np.arange(0.0, maximum + bin_width, bin_width)
    counts, _ = np.histogram(array, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts
