"""Mean Absolute Percentage Error (paper Table 1)."""

from __future__ import annotations

import typing as _t

import numpy as np


def mape(actual: _t.Sequence[float] | np.ndarray,
         predicted: _t.Sequence[float] | np.ndarray) -> float:
    """MAPE in percent: ``100/n * sum(|A - P| / |A|)``.

    Raises on length mismatch, empty input, or zero actual values (the
    metric is undefined there).
    """
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if a.size == 0:
        raise ValueError("MAPE of empty input is undefined")
    if np.any(a == 0):
        raise ValueError("MAPE is undefined when an actual value is zero")
    return float(100.0 * np.mean(np.abs((a - p) / a)))
