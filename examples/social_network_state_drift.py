"""Social Network under system-state drift: Kubernetes HPA vs Sora.

Reproduces the paper's Fig. 12 story at laptop scale. The Read
Home-Timeline path runs with a liberally sized request-connection pool
from Home-Timeline to Post Storage. Mid-run, the request type drifts
from light (2 posts) to heavy (10 posts), which stresses the downstream
post store. Kubernetes HPA adds Post Storage replicas but never touches
the connection pool, so the stale allocation melts the downstream; Sora
re-estimates the optimal per-replica connections and re-sizes the
shared pool as the replica count changes.

Run:
    python examples/social_network_state_drift.py

Set ``REPRO_EXAMPLE_SMOKE=1`` for a CI-sized run (shorter trace, same
story).
"""

import os

from repro.experiments import (
    run_scenario,
    social_network_drift_scenario,
)
from repro.experiments.reporting import series_table
from repro.workloads import large_variation

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"
DURATION = 45.0 if SMOKE else 240.0
DRIFT_AT = 15.0 if SMOKE else 80.0
SLA = 0.4


def run_one(controller: str):
    trace = large_variation(duration=DURATION, peak_users=560,
                            min_users=260)
    scenario = social_network_drift_scenario(
        trace=trace, controller=controller, autoscaler="hpa",
        drift_at=DRIFT_AT, sla=SLA)
    return run_scenario(scenario, duration=DURATION)


def describe(result, label: str) -> None:
    rt_times, rt = result.response_time_series(interval=15.0)
    gp_times, gp = result.goodput_series(interval=15.0)
    conns = result.series(
        "home-timeline.poststorage->post-storage.allocation")
    in_use = result.series(
        "home-timeline.poststorage->post-storage.in_use")
    replicas = result.series("post-storage.replicas")
    print(series_table(
        {
            "p95 RT [ms]": (rt_times, rt * 1000.0),
            "goodput [req/s]": (gp_times, gp),
            "conns alloc": conns,
            "conns in use": in_use,
            "replicas": replicas,
        },
        step=DURATION / 8, until=DURATION,
        title=f"--- {label} (Fig. 12 panels; drift at "
              f"t={DRIFT_AT:.0f}s) ---"))
    summary = result.summary_row()
    print(f"summary: goodput={summary['goodput_rps']} req/s  "
          f"p95={summary['p95_ms']} ms  p99={summary['p99_ms']} ms")
    print()


def main() -> None:
    hpa_only = run_one("none")
    with_sora = run_one("sora")
    describe(hpa_only, "Kubernetes HPA (static connections)")
    describe(with_sora, "HPA + Sora")
    gain = with_sora.goodput() / max(1e-9, hpa_only.goodput())
    print(f"Sora improves goodput by {gain:.2f}x after the request-type "
          f"change, by re-sizing the connection pool for the drifted "
          f"system state and tracking the replica count.")


if __name__ == "__main__":
    main()
