"""A guided tour of the SCG model's phases on live traces.

Walks the four phases of the Scatter-Concurrency-Goodput model (paper
Fig. 6) against a running Sock Shop:

1. critical service localization (utilization + Pearson correlation);
2. response-time threshold propagation along the critical path;
3. <concurrency, goodput> metrics collection at 100 ms granularity;
4. knee-point estimation (polynomial smoothing + Kneedle).

Run:
    python examples/critical_path_tour.py

Set ``REPRO_EXAMPLE_SMOKE=1`` for a CI-sized run (one estimation
window instead of two).
"""

import os

import numpy as np

from repro.analysis import aggregate_scatter
from repro.app.topologies import build_sock_shop
from repro.core import (
    CriticalServiceLocator,
    DeadlinePropagator,
    MonitoringModule,
    SCGModel,
    ThreadPoolTarget,
)
from repro.core.estimator import ConcurrencyEstimator, EstimatorConfig
from repro.experiments.reporting import ascii_table, sparkline
from repro.sim import Environment, RandomStreams
from repro.tracing import critical_path_frequencies, extract_critical_path
from repro.workloads import ClosedLoopDriver, WorkloadTrace

SLA = 0.4
WINDOW = 60.0
DURATION = 70.0 if os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1" \
    else 120.0


def main() -> None:
    env = Environment()
    streams = RandomStreams(7)
    app = build_sock_shop(env, streams, cart_threads=8, cart_cores=2.0)
    cart = app.service("cart")
    monitoring = MonitoringModule(env, app)
    monitoring.start()

    # Drive the "browse" request type: the front-end fans out to Cart
    # and Catalogue in parallel (Fig. 5), so the critical path varies.
    import math
    trace = WorkloadTrace("tour", DURATION, 400, 120,
                          lambda u: 0.55 + 0.45 * math.sin(
                              2 * math.pi * 4.0 * u))
    driver = ClosedLoopDriver(env, app, "browse", trace,
                              streams.stream("driver"))

    target = ThreadPoolTarget(cart)
    estimator = ConcurrencyEstimator(
        env, target, SCGModel(), threshold_provider=lambda: SLA,
        config=EstimatorConfig(window=WINDOW))
    estimator.start()
    driver.start()
    env.run(until=DURATION)

    now = env.now
    traces = app.warehouse.traces(now - WINDOW, now)
    print(f"collected {len(traces)} traces in the last "
          f"{WINDOW:.0f} s window\n")

    # ------------------------------------------------------------------
    print("Phase 1 - critical service localization")
    frequencies = critical_path_frequencies(traces)
    rows = [[" -> ".join(path), count]
            for path, count in sorted(frequencies.items(),
                                      key=lambda kv: -kv[1])]
    print(ascii_table(["critical path", "traces"], rows))
    locator = CriticalServiceLocator(exclude=("front-end",))
    report = locator.locate(traces, monitoring.utilizations(WINDOW))
    corr_rows = [[svc, round(pcc, 3),
                  round(report.utilizations.get(svc, 0.0), 2)]
                 for svc, pcc in sorted(report.correlations.items(),
                                        key=lambda kv: -kv[1])]
    print(ascii_table(["service", "PCC(PT, RT_CP)", "utilization"],
                      corr_rows))
    print(f"=> critical service: {report.critical_service}\n")

    # ------------------------------------------------------------------
    print("Phase 2 - RT threshold propagation")
    propagator = DeadlinePropagator(sla=SLA)
    deadline = propagator.propagate(traces, report.critical_service)
    print(f"SLA = {SLA * 1000:.0f} ms; mean upstream processing = "
          f"{deadline.upstream_budget * 1000:.1f} ms "
          f"({deadline.samples} traces)")
    print(f"=> propagated threshold for {deadline.service}: "
          f"{deadline.threshold * 1000:.1f} ms\n")

    # ------------------------------------------------------------------
    print("Phase 3 - metrics collection (100 ms granularity)")
    q, gp = estimator.sampler.pairs(since=now - WINDOW)
    print(f"collected {q.size} <Q, GP> pairs; "
          f"concurrency spans {q.min():.1f}..{q.max():.1f}")
    aq, agp = aggregate_scatter(np.round(q[q > 0] * 2) / 2, gp[q > 0])
    print("goodput vs concurrency (aggregated): "
          f"{sparkline(agp, width=40)}\n")

    # ------------------------------------------------------------------
    print("Phase 4 - knee-point estimation")
    estimate = estimator.estimate_now()
    if estimate is None:
        print("not enough signal in this window - run longer")
        return
    print(f"polynomial degree: {estimate.fit.degree}  "
          f"(incrementally tuned, paper finds 5-8 adequate)")
    print(f"method: {estimate.method}")
    print(f"=> optimal Cart thread pool: "
          f"{estimate.optimal_concurrency} threads "
          f"(currently allocated: {target.allocation()})")

    example_trace = traces[-1]
    path = extract_critical_path(example_trace)
    print("\nsample request walkthrough:")
    for span in path.spans:
        print(f"  {span.service:<14} residence "
              f"{span.duration * 1000:7.2f} ms   self "
              f"{span.self_time() * 1000:7.2f} ms   queue-wait "
              f"{span.queue_wait * 1000:7.2f} ms")


if __name__ == "__main__":
    main()
