"""Sock Shop under the Steep Tri Phase trace: FIRM vs FIRM+Sora.

Reproduces the paper's Fig. 10 walkthrough at laptop scale: a
hardware-only autoscaler (FIRM) scales the Cart service's CPU during an
overload phase, but the static thread pool leaves the new cores
under-used; Sora's Concurrency Adapter re-sizes the pool right after
each hardware action and keeps refining it online.

Run:
    python examples/sock_shop_autoscaling.py

Set ``REPRO_EXAMPLE_SMOKE=1`` for a CI-sized run (shorter trace, same
story).
"""

import os

from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import series_table
from repro.workloads import steep_tri_phase

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"
DURATION = 45.0 if SMOKE else 300.0
SLA = 0.4


def run_one(controller: str):
    trace = steep_tri_phase(duration=DURATION, peak_users=450,
                            min_users=80)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller=controller, autoscaler="firm", sla=SLA)
    return run_scenario(scenario, duration=DURATION)


def describe(result, label: str) -> None:
    rt_times, rt = result.response_time_series(interval=15.0)
    gp_times, gp = result.goodput_series(interval=15.0)
    cores = result.series("cart.cores")
    threads = result.series("cart.threads.allocation")
    busy = result.series("cart.busy_cores")
    print(series_table(
        {
            "p95 RT [ms]": (rt_times, rt * 1000.0),
            "goodput [req/s]": (gp_times, gp),
            "CPU limit [cores]": cores,
            "CPU busy [cores]": busy,
            "threads": threads,
        },
        step=DURATION / 10, until=DURATION,
        title=f"--- {label} (Fig. 10 panels) ---"))
    summary = result.summary_row()
    print(f"summary: goodput={summary['goodput_rps']} req/s  "
          f"p95={summary['p95_ms']} ms  p99={summary['p99_ms']} ms")
    if result.scale_events:
        events = ", ".join(
            f"t={e.time:.0f}s {e.before:.0f}->{e.after:.0f} cores"
            for e in result.scale_events)
        print(f"hardware scaling: {events}")
    if result.adaptation_actions:
        actions = ", ".join(
            f"t={a.time:.0f}s {a.before}->{a.after} ({a.trigger})"
            for a in result.adaptation_actions)
        print(f"thread-pool adaptation: {actions}")
    print()


def main() -> None:
    firm_only = run_one("none")
    with_sora = run_one("sora")
    describe(firm_only, "FIRM (hardware-only)")
    describe(with_sora, "FIRM + Sora")
    p99_ratio = firm_only.percentile(99) / max(1e-9,
                                               with_sora.percentile(99))
    print(f"Sora reduces p99 latency by {p99_ratio:.1f}x on this trace "
          f"(paper reports up to 2.5x across the six traces).")


if __name__ == "__main__":
    main()
