"""Resilience tour: fault injection and call-layer policies end to end.

Walks the whole `repro.faults` surface in one run. A `FaultPlan`
throws every injector kind at the Sock Shop cart path — a database
crash, CPU interference from a noisy neighbor, edge latency, edge
failures, and a replica blackout — while call-layer policies
(timeouts, retries with jittered backoff, a circuit breaker, graceful
degradation) absorb what they can and Sora re-adapts the thread pool
through the turbulence.

Run:
    python examples/resilience_tour.py            # full 240 s run
    python examples/resilience_tour.py --smoke    # 30 s CI-sized run

``REPRO_EXAMPLE_SMOKE=1`` (the convention CI uses for every example)
is equivalent to ``--smoke``.
"""

import argparse
import os

from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import ascii_table, sparkline
from repro.faults import CallPolicy, CircuitBreakerPolicy, FaultPlan, RetryPolicy
from repro.obs import Observability
from repro.workloads import big_spike


def build_plan(duration: float) -> FaultPlan:
    """One fault of every kind, spread over the run (times scale with
    ``duration`` so the smoke run exercises the same schedule)."""
    at = lambda f: round(f * duration, 1)  # noqa: E731
    return FaultPlan.from_dict({"faults": [
        {"kind": "crash", "service": "cart-db", "at": at(0.20),
         "mode": "drain", "restart_after": at(0.05)},
        {"kind": "interference", "service": "cart", "at": at(0.40),
         "duration": at(0.15), "demand_factor": 2.0, "core_steal": 0.25},
        {"kind": "edge-latency", "caller": "cart", "callee": "cart-db",
         "at": at(0.60), "duration": at(0.10), "delay": 0.02,
         "jitter": 0.5},
        {"kind": "edge-failure", "caller": "front-end", "callee": "cart",
         "at": at(0.75), "duration": at(0.10), "probability": 0.4},
        {"kind": "blackout", "service": "cart", "at": at(0.90),
         "duration": at(0.05), "replicas": 1},
    ]})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short CI-sized run (30 s instead of 240 s)")
    args = parser.parse_args()
    smoke = args.smoke or \
        os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"
    duration = 30.0 if smoke else 240.0

    trace = big_spike(duration=duration, peak_users=350, min_users=100)
    obs = Observability()
    plan = build_plan(duration)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", sla=0.4,
        obs=obs, fault_plan=plan)

    # Call-layer resilience on the edges the plan attacks. The
    # front-end retries/degrades around injected edge failures and the
    # cart blackout; the cart breaker stops hammering the crashed DB.
    streams = scenario.streams
    scenario.app.service("front-end").set_call_policy(
        "cart",
        CallPolicy(timeout=2.0,
                   retry=RetryPolicy(max_attempts=4, base_backoff=0.05),
                   degrade=True),
        rng=streams.stream("resilience.front-end.cart"))
    scenario.app.service("cart").set_call_policy(
        "cart-db",
        CallPolicy(timeout=1.0,
                   retry=RetryPolicy(max_attempts=3, base_backoff=0.02),
                   breaker=CircuitBreakerPolicy(failure_threshold=5,
                                                recovery_time=2.0)),
        rng=streams.stream("resilience.cart.cart-db"))

    result = run_scenario(scenario, duration=duration)

    print(ascii_table(
        ["t [s]", "fault", "phase", "where", "detail"],
        [[f"{r.time:.1f}", r.fault, r.phase, r.service or r.edge or "",
          " ".join(f"{k}={v}" for k, v in sorted(r.detail.items()))]
         for r in result.fault_events],
        title="Fault timeline (what the plan injected)"))
    print()

    _, rt = result.response_time_series(interval=duration / 48)
    print(f"p95 response time over the run: {sparkline(rt * 1000)}")
    print()

    rows = []
    for caller, callee in (("front-end", "cart"), ("cart", "cart-db")):
        stats = scenario.app.service(caller).call_policy_stats(callee)
        rows.append([f"{caller} -> {callee}"] +
                    [stats[k] for k in ("attempts", "retries", "timeouts",
                                        "injected", "short_circuited",
                                        "degraded", "failures")])
    print(ascii_table(
        ["edge", "attempts", "retries", "timeouts", "injected",
         "breaker", "degraded", "failures"],
        rows, title="Call-layer policy counters (what resilience absorbed)"))
    print()

    summary = result.summary_row()
    adapted = [a for a in result.adaptation_actions if a.after != a.before]
    print(f"Requests: {scenario.app.total_submitted} submitted, "
          f"{result.failed_total} failed, goodput "
          f"{summary['goodput_rps']} req/s, p95 {summary['p95_ms']} ms.")
    print(f"Sora applied {len(adapted)} pool changes through the faults; "
          f"the decision log recorded "
          f"{len(obs.decisions.fault_events())} fault transitions.")
    print()
    print("Every fault and every re-adaptation shares one audit trail — "
          "render it with:")
    print("    python -m repro.cli faults example > plan.json")
    print("    python -m repro.cli faults run --plan plan.json --report "
          "report.txt")


if __name__ == "__main__":
    main()
