"""Validate the simulator against exact queueing theory (MVA).

The closed-loop service substrate (think-time users over processor-
sharing stations) is a product-form network, so Mean Value Analysis
gives its exact steady state. This example runs the same tandem chain
both ways — simulated and solved — across a population sweep, printing
throughput and mean response time side by side.

Run:
    python examples/queueing_validation.py

Set ``REPRO_EXAMPLE_SMOKE=1`` for a CI-sized run (shorter measurement
window, so expect a couple of percent more simulation noise).
"""

import os

import numpy as np

from repro.analysis.queueing import Station, asymptotic_bounds, solve_mva
from repro.app import Application, Call, Compute, Microservice, Operation
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, Exponential, LogNormal, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

DEMANDS = [0.020, 0.035, 0.010]  # seconds per visit, station 2 is heavy
THINK = 0.5
SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"
DURATION = 60.0 if SMOKE else 240.0


def simulate(population: int) -> tuple[float, float]:
    env = Environment()
    streams = RandomStreams(3)
    app = Application(env)
    names = [f"stage{i}" for i in range(len(DEMANDS))]
    for index, (name, demand) in enumerate(zip(names, DEMANDS)):
        service = Microservice(env, name, streams.stream(name),
                               cores=1.0, cpu_overhead=0.0)
        steps = [Compute(LogNormal(demand, cv=1.0))]
        if index + 1 < len(names):
            steps.append(Call(names[index + 1]))
        service.add_operation(Operation("default", steps))
        app.add_service(service)
    app.set_entrypoint("go", names[0], "default")
    trace = WorkloadTrace("flat", DURATION, population, population,
                          lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "go", trace,
                              streams.stream("drv"),
                              think_time=Exponential(THINK))
    driver.start()
    env.run(until=DURATION + 1.0)
    times, latencies = app.latency["go"].window(DURATION / 2, DURATION)
    return times.size / (DURATION / 2), float(np.mean(latencies))


def main() -> None:
    stations = [Station(f"stage{i}", d)
                for i, d in enumerate(DEMANDS)]
    x_max, n_star = asymptotic_bounds(stations, think_time=THINK)
    print(f"bottleneck bound: X_max = {x_max:.1f} req/s, "
          f"saturation population N* = {n_star:.1f}\n")

    rows = []
    for population in (2, 5, 10, 16, 24, 40):
        theory = solve_mva(stations, population, think_time=THINK)
        sim_x, sim_r = simulate(population)
        rows.append([
            population,
            round(theory.throughput, 1), round(sim_x, 1),
            f"{(sim_x / theory.throughput - 1) * 100:+.1f}%",
            round(theory.cycle_time * 1000, 1), round(sim_r * 1000, 1),
        ])
    print(ascii_table(
        ["N", "X theory [req/s]", "X simulated", "error",
         "R theory [ms]", "R simulated [ms]"],
        rows,
        title="Tandem PS chain: exact MVA vs discrete-event simulation"))
    print("\nProcessor sharing is insensitive to the service "
          "distribution, so the lognormal simulation matches the "
          "distribution-free MVA solution.")


if __name__ == "__main__":
    main()
