"""Quickstart: adapt a microservice's thread pool with Sora.

Builds the Sock Shop benchmark application on the discrete-event
substrate, drives it with a bursty workload, and lets Sora (SCG model +
FIRM vertical autoscaler) keep the Cart service's thread pool optimal.

Run:
    python examples/quickstart.py

Set ``REPRO_EXAMPLE_SMOKE=1`` for a CI-sized run (shorter trace, same
story).
"""

import os

from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import ascii_table, sparkline
from repro.workloads import big_spike

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"


def main() -> None:
    trace = big_spike(duration=30.0 if SMOKE else 180.0,
                      peak_users=450, min_users=80)

    rows = []
    for controller in ("none", "sora"):
        scenario = sock_shop_cart_scenario(
            trace=trace, controller=controller, autoscaler="firm",
            sla=0.4, name=controller)
        result = run_scenario(scenario, duration=trace.duration)
        summary = result.summary_row()
        rows.append([
            "FIRM only" if controller == "none" else "FIRM + Sora",
            summary["goodput_rps"], summary["p95_ms"], summary["p99_ms"],
            len(result.adaptation_actions),
        ])
        _, rt = result.response_time_series(interval=5.0)
        label = "FIRM only " if controller == "none" else "FIRM + Sora"
        print(f"{label} p95 response time over the run: "
              f"{sparkline(rt * 1000)}")

    print()
    print(ascii_table(
        ["system", "goodput [req/s]", "p95 [ms]", "p99 [ms]",
         "pool adaptations"],
        rows,
        title="Big Spike workload on Sock Shop Cart (SLA 400 ms)"))
    print()
    print("Sora re-adapts the Cart thread pool as load and hardware "
          "change, keeping tail latency bounded through the spike.")


if __name__ == "__main__":
    main()
