"""Check that relative links in the repo's markdown files resolve.

Scans every tracked ``*.md`` file for markdown links and validates the
local ones: relative paths must exist on disk (anchors are stripped),
and bare ``path:line`` code references in the docs must point at real
files. External ``http(s)``/``mailto`` links are only syntax-checked,
never fetched — CI must not depend on the network.

``--html`` switches to self-containment mode for rendered HTML
artifacts (the obs report and the telemetry dashboard): the files must
work from a ``file://`` open with no network — no ``http(s)`` fetches,
no external stylesheets, scripts, images, or ``@import``s.

Run:
    python tools/check_links.py            # check the whole repo
    python tools/check_links.py README.md  # check specific files
    python tools/check_links.py --html dashboard.html

Exits non-zero listing every broken link, one per line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for the docs we write; nested
#: parens in URLs are out of scope.
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Inline-code file references like ``src/repro/faults/plan.py`` —
#: checked so the prose never points at files that moved.
CODE_REF = re.compile(r"`([A-Za-z0-9_./-]+\.(?:py|md|toml|yml|json))`")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(paths: list[str]) -> list[Path]:
    if paths:
        return [Path(p).resolve() for p in paths]
    return sorted(p for p in REPO.rglob("*.md")
                  if ".git" not in p.parts and "results" not in p.parts)


def check_file(md: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    targets = [(m.group(1), "link") for m in LINK.finditer(text)]
    targets += [(m.group(1), "code-ref") for m in CODE_REF.finditer(text)]
    for target, kind in targets:
        if target.startswith(SKIP_SCHEMES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if kind == "code-ref" and "/" not in path:
            continue  # bare filename mentions, not paths
        # Docs refer to modules four ways: relative to the file,
        # repo-rooted, import-path-rooted (`repro/tracing/span.py`
        # meaning `src/repro/tracing/span.py`), or package-rooted
        # (`sim/engine.py` meaning `src/repro/sim/engine.py`).
        bases = (md.parent, REPO, REPO / "src", REPO / "src" / "repro")
        if not any((base / path).exists() for base in bases):
            errors.append(f"{md.relative_to(REPO)}: broken {kind} "
                          f"-> {target}")
    return errors


#: Anything that would make a browser leave the file: external
#: fetches via attributes, stylesheet links, or CSS imports.
_HTML_EXTERNAL = (
    re.compile(r"""(?:src|href)\s*=\s*["'](?!#|data:)([^"']+)["']""",
               re.IGNORECASE),
)
_HTML_FORBIDDEN = (
    (re.compile(r"<link\b", re.IGNORECASE), "<link> element"),
    (re.compile(r"@import\b", re.IGNORECASE), "CSS @import"),
    (re.compile(r"https?://"), "absolute http(s) URL"),
)


def check_html_self_contained(path: Path) -> list[str]:
    """Errors for every way ``path`` could trigger a network fetch."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for pattern in _HTML_EXTERNAL:
        for match in pattern.finditer(text):
            errors.append(f"{path}: external resource reference "
                          f"-> {match.group(1)}")
    for pattern, label in _HTML_FORBIDDEN:
        if pattern.search(text):
            errors.append(f"{path}: not self-contained ({label})")
    return errors


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--html":
        html_files = [Path(p) for p in argv[1:]]
        if not html_files:
            print("usage: check_links.py --html FILE [FILE ...]",
                  file=sys.stderr)
            return 2
        errors = []
        for path in html_files:
            errors.extend(check_html_self_contained(path))
        for error in errors:
            print(error, file=sys.stderr)
        if not errors:
            print(f"OK: {len(html_files)} HTML file(s), fully "
                  "self-contained.")
        return 1 if errors else 0
    files = iter_markdown_files(argv)
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"OK: {len(files)} markdown files, all local links resolve.")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
