"""Ablation — one-shot knee estimation vs step-by-step search (§3.1).

The paper's argument for the SCG model over "step-by-step heuristic
approaches" (Bayesian optimization, BestConfig-style search) is
adaptation *speed*: bursty traffic sweeps the concurrency range within
one window, so SCG reads the whole goodput-vs-concurrency curve from a
single 60 s window, while a sequential tuner must spend one evaluation
period per configuration probed.

Both controllers start from the same under-allocated Cart pool under
the same load; we compare how quickly each reaches (and how well it
holds) the healthy region.
"""

import math

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.app.topologies import build_sock_shop
from repro.core import (
    HillClimbController,
    MonitoringModule,
    SoraController,
    ThreadPoolTarget,
)
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

SLA = 0.3
DURATION = 300.0
START_THREADS = 3


def run_one(kind: str):
    env = Environment()
    streams = RandomStreams(37)
    app = build_sock_shop(env, streams, cart_threads=START_THREADS,
                          cart_cores=4.0)
    cart = app.service("cart")
    target = ThreadPoolTarget(cart)
    duration = scaled(DURATION)
    trace = WorkloadTrace(
        "osc", duration, 500, 250,
        lambda u: 0.75 + 0.25 * math.sin(2 * math.pi * 8.0 * u))
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=5.0)
    if kind == "sora":
        monitoring = MonitoringModule(env, app)
        controller = SoraController(env, app, monitoring, [target],
                                    sla=SLA)
    else:
        controller = HillClimbController(env, app, target, sla=SLA,
                                         rng=streams.stream("hc"))
    controller.start()
    driver.start()
    env.run(until=duration + 2.0)
    times, latencies = app.latency["cart"].window(0.0, duration)
    return times, latencies, list(controller.actions), duration


def goodput_series(times, latencies, duration, interval=15.0):
    edges = np.arange(0.0, duration + interval, interval)
    good = times[latencies <= SLA]
    counts, _ = np.histogram(good, bins=edges)
    return edges[:-1], counts / interval


def convergence_time(times, latencies, duration) -> float:
    """First bucket from which goodput stays >= 90% of the final
    steady-state level."""
    starts, rates = goodput_series(times, latencies, duration)
    steady = np.mean(rates[-4:])
    threshold = 0.9 * steady
    for index in range(len(rates)):
        if np.all(rates[index:] >= threshold * 0.95) and \
                rates[index] >= threshold:
            return float(starts[index])
    return float(duration)


def run_all():
    return {kind: run_one(kind) for kind in ("sora", "hillclimb")}


def render(results) -> tuple[str, dict]:
    rows = []
    stats = {}
    for kind, label in (("sora", "SCG one-shot knee (Sora)"),
                        ("hillclimb", "step-by-step hill climbing")):
        times, latencies, actions, duration = results[kind]
        converged = convergence_time(times, latencies, duration)
        goodput = float(np.count_nonzero(latencies <= SLA)) / duration
        stats[kind] = {"converged": converged, "goodput": goodput}
        rows.append([label, round(converged, 0), round(goodput, 1),
                     len(actions)])
    table = ascii_table(
        ["controller", "time to steady goodput [s]",
         "mean goodput [req/s]", "reconfigurations"],
        rows,
        title="Ablation: adaptation speed from an under-allocated pool "
              f"(start {START_THREADS} threads, SLA {SLA * 1000:.0f} ms)")
    return table, stats


def test_ablation_adaptation_speed(benchmark):
    results = once(benchmark, run_all)
    table, stats = render(results)
    publish("ablation_adaptation_speed", table)
    # The paper's claim: the one-shot model adapts at least as fast and
    # ends at least as good as sequential search.
    assert stats["sora"]["converged"] <= \
        stats["hillclimb"]["converged"] + 15.0
    assert stats["sora"]["goodput"] >= 0.95 * \
        stats["hillclimb"]["goodput"]