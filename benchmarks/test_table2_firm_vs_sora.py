"""Table 2 — FIRM vs Sora across the six bursty traces.

Tail latency (p95/p99) and average goodput for the Cart service under
all six real-world trace shapes, FIRM alone vs FIRM+Sora. The paper
reports Sora cutting p99 by ~2.2x on average (up to 2.5x) and raising
goodput on every trace.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.experiments import (
    parallel_map,
    ratio,
    run_scenario,
    sock_shop_cart_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import TRACE_NAMES, build_trace


def _run_cell(spec):
    """One (trace, controller) cell — module-level so worker processes
    can run it; the cell builds its own trace and seeds, so results are
    identical to the serial loop."""
    trace_name, controller = spec
    trace = build_trace(trace_name, duration=TRACE_DURATION,
                        peak_users=PEAK_USERS, min_users=MIN_USERS)
    scenario = sock_shop_cart_scenario(
        trace=trace, controller=controller, autoscaler="firm", sla=SLA)
    return run_scenario(scenario, duration=TRACE_DURATION)


def run_all():
    cells = [(trace_name, controller)
             for trace_name in TRACE_NAMES
             for controller in ("none", "sora")]
    results = parallel_map(_run_cell, cells)
    outcome = {}
    for (trace_name, controller), result in zip(cells, results):
        outcome.setdefault(trace_name, {})[controller] = result
    return outcome


def render(outcome) -> str:
    rows = []
    for trace_name, per_system in outcome.items():
        firm, sora = per_system["none"], per_system["sora"]
        rows.append([
            trace_name,
            f"{firm.percentile(95) * 1000:.0f} / "
            f"{sora.percentile(95) * 1000:.0f}",
            f"{firm.percentile(99) * 1000:.0f} / "
            f"{sora.percentile(99) * 1000:.0f}",
            f"{firm.goodput():.0f} / {sora.goodput():.0f}",
            round(ratio(firm.percentile(99), sora.percentile(99)), 2),
        ])
    return ascii_table(
        ["workload trace", "p95 [ms] (FIRM/Sora)",
         "p99 [ms] (FIRM/Sora)", "goodput-400ms (FIRM/Sora)",
         "p99 improvement"],
        rows,
        title="Table 2: FIRM vs Sora under six bursty traces "
              "(SLA 400 ms)")


def test_table2_firm_vs_sora(benchmark):
    outcome = once(benchmark, run_all)
    publish("table2_firm_vs_sora", render(outcome))
    improvements = []
    for trace_name, per_system in outcome.items():
        firm, sora = per_system["none"], per_system["sora"]
        assert sora.goodput() >= firm.goodput() * 0.95, (
            f"{trace_name}: Sora goodput regressed")
        improvements.append(ratio(firm.percentile(99),
                                  sora.percentile(99)))
    # Shape: Sora improves p99 on most traces, never catastrophically
    # regresses, and wins clearly somewhere (paper: up to 2.5x).
    assert sum(1 for i in improvements if i >= 1.0) >= 4
    assert max(improvements) >= 1.3
    assert min(improvements) >= 0.7
