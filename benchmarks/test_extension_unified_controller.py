"""Extension — the unified hardware+soft controller (§4.1 future work).

The paper proposes (as future work) replacing the two-loop design
(hardware autoscaler + Concurrency Adapter) with a single controller
that owns both knobs. This bench compares the composed design
(Sora over FIRM) against the unified controller on the paper's
Fig. 10 trace.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.core import (
    MonitoringModule,
    ThreadPoolTarget,
    UnifiedSoraController,
)
from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.harness import Scenario
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, steep_tri_phase


def unified_scenario(trace):
    env = Environment()
    streams = RandomStreams(42)
    from repro.app.topologies import build_sock_shop
    app = build_sock_shop(env, streams, cart_threads=5, cart_cores=2.0)
    cart = app.service("cart")
    monitoring = MonitoringModule(env, app)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("driver"), ramp_up=10.0)
    target = ThreadPoolTarget(cart)
    controller = UnifiedSoraController(env, app, monitoring, [target],
                                       sla=SLA)
    return Scenario(
        name="unified", env=env, streams=streams, app=app,
        monitoring=monitoring, drivers=[driver], request_type="cart",
        sla=SLA, controller=controller, autoscaler=None, target=target)


def run_all():
    results = {}
    trace = steep_tri_phase(duration=TRACE_DURATION,
                            peak_users=PEAK_USERS, min_users=MIN_USERS)
    composed = sock_shop_cart_scenario(
        trace=trace, controller="sora", autoscaler="firm", sla=SLA)
    results["composed"] = run_scenario(composed, duration=TRACE_DURATION)

    trace = steep_tri_phase(duration=TRACE_DURATION,
                            peak_users=PEAK_USERS, min_users=MIN_USERS)
    scenario = unified_scenario(trace)
    results["unified"] = run_scenario(scenario, duration=TRACE_DURATION)
    results["unified_hw"] = len(
        scenario.controller.hardware_log)  # type: ignore[attr-defined]
    return results


def render(results) -> str:
    rows = []
    for key, label, hw in (
            ("composed", "Sora over FIRM (two loops)",
             len(results["composed"].scale_events)),
            ("unified", "Unified controller (one loop)",
             results["unified_hw"])):
        result = results[key]
        summary = result.summary_row()
        rows.append([label, summary["goodput_rps"], summary["p95_ms"],
                     summary["p99_ms"], hw,
                     len(result.adaptation_actions)])
    return ascii_table(
        ["design", "goodput", "p95 [ms]", "p99 [ms]", "HW scalings",
         "pool adaptations"],
        rows,
        title="Extension: composed vs unified control "
              "(Steep Tri Phase, SLA 400 ms)")


def test_extension_unified_controller(benchmark):
    results = once(benchmark, run_all)
    publish("extension_unified_controller", render(results))
    composed, unified = results["composed"], results["unified"]
    # The unified design must match the composed one (the paper expects
    # it to be at least as good once the handoff latency is gone).
    assert unified.goodput() >= 0.9 * composed.goodput()
    assert unified.percentile(99) <= composed.percentile(99) * 1.2
    assert results["unified_hw"] >= 1  # it actually scaled hardware
