"""Extension — change-point detection for faster regime adaptation.

Beyond the paper: Sora's window mixes samples across unannounced regime
changes (the §5.3 state drift), which is what causes the transient
over/under-shoot right after the drift. A Page-Hinkley detector on the
target's mean processing time flushes the stale window the moment the
regime shifts, so the next estimate sees only new-regime samples.
"""

from benchmarks._common import SLA, TRACE_DURATION, once, publish
from repro.core import FrameworkConfig
from repro.experiments import (
    run_scenario,
    social_network_drift_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import large_variation

DRIFT_AT = TRACE_DURATION / 3.0


def run_all():
    results = {}
    for detect in (False, True):
        trace = large_variation(duration=TRACE_DURATION, peak_users=560,
                                min_users=260)
        scenario = social_network_drift_scenario(
            trace=trace, controller="sora", autoscaler="hpa",
            drift_at=DRIFT_AT, sla=SLA)
        scenario.controller.config = FrameworkConfig(detect_drift=detect)
        results[detect] = (run_scenario(scenario,
                                        duration=TRACE_DURATION),
                           list(scenario.controller.drift_detections))
    return results


def render(results) -> str:
    import numpy as np
    rows = []
    for detect, label in ((False, "Sora (paper design)"),
                          (True, "Sora + drift detector")):
        result, detections = results[detect]
        drifted = result.completion_times > DRIFT_AT
        heavy = result.response_times[drifted]
        post_goodput = float(
            np.count_nonzero(heavy <= SLA)) / (TRACE_DURATION - DRIFT_AT)
        post_p95 = (float(np.percentile(heavy, 95)) * 1000
                    if heavy.size else 0.0)
        rows.append([label, round(result.goodput(), 1),
                     round(post_goodput, 1), round(post_p95, 1),
                     len(detections)])
    return ascii_table(
        ["design", "goodput (run)", "goodput (post-drift)",
         "p95 post-drift [ms]", "detections"],
        rows,
        title=f"Extension: change-point detection on the Fig. 12 drift "
              f"(drift at t={DRIFT_AT:.0f}s)")


def test_extension_drift_detection(benchmark):
    results = once(benchmark, run_all)
    publish("extension_drift_detection", render(results))
    baseline, _d0 = results[False]
    detecting, detections = results[True]
    # The detector must fire near the drift...
    assert detections, "no drift detected"
    # ...and not hurt overall performance.
    assert detecting.goodput() >= 0.9 * baseline.goodput()
