"""Figure 9 — SCG estimates validated against allocation sweeps.

Three case studies, one per soft-resource kind:

- (a) threads in Cart (SpringBoot-style server pool),
- (b) DB connections in Catalogue (Golang database/sql pool),
- (c) request connections to Post Storage (Thrift ClientPool).

For each: run with a liberal allocation, let the SCG model estimate the
optimal concurrency from the live scatter ("Model Estimation"), then
re-run with the recommendation and adjacent allocations and check the
recommendation achieves (nearly) the highest goodput
("Model Validation").
"""

from benchmarks._common import once, publish, scaled
from benchmarks._subjects import ALL_SUBJECTS, THRESHOLD
from repro.core import SCGModel
from repro.core.estimator import ConcurrencyEstimator, EstimatorConfig
from repro.experiments.reporting import ascii_table

ESTIMATION_DURATION = 120.0
VALIDATION_DURATION = 60.0
LIBERAL_ALLOCATION = 30


def run_all():
    outcome = {}
    for subject in ALL_SUBJECTS:
        duration = scaled(ESTIMATION_DURATION)
        env, app, target = subject.start_run(
            LIBERAL_ALLOCATION, duration, seed=21)
        estimator = ConcurrencyEstimator(
            env, target, SCGModel(),
            threshold_provider=lambda: THRESHOLD,
            config=EstimatorConfig(window=duration))
        estimator.start()
        env.run(until=duration + 2.0)
        estimate = estimator.estimate_now()
        recommended = (estimate.optimal_concurrency
                       if estimate is not None else LIBERAL_ALLOCATION)

        candidates = sorted({max(2, recommended // 2), recommended,
                             recommended * 2, recommended * 4})
        validation = {}
        for allocation in candidates:
            v_duration = scaled(VALIDATION_DURATION)
            env, app, _target = subject.start_run(allocation,
                                                  v_duration, seed=22)
            env.run(until=v_duration + 2.0)
            validation[allocation] = subject.goodput(app, v_duration)
        outcome[subject.name] = (subject, estimate, recommended,
                                 validation)
    return outcome


def render(outcome) -> str:
    sections = []
    for subject, estimate, recommended, validation in outcome.values():
        method = "-" if estimate is None else estimate.method
        rows = [[alloc, round(gp, 1),
                 "<= SCG recommendation" if alloc == recommended else ""]
                for alloc, gp in sorted(validation.items())]
        sections.append(ascii_table(
            ["allocation",
             f"goodput @{THRESHOLD * 1000:.0f}ms [req/s]", ""],
            rows,
            title=f"--- {subject.name}: SCG recommends {recommended} "
                  f"({method}) ---"))
    return "\n\n".join(sections)


def test_fig09_model_validation(benchmark):
    outcome = once(benchmark, run_all)
    publish("fig09_model_validation", render(outcome))
    for subject, estimate, recommended, validation in outcome.values():
        assert estimate is not None, f"{subject.name}: no estimate"
        best = max(validation, key=validation.get)
        # The recommendation must be at least 90% of the best candidate
        # (the paper's validation shows it beating all adjacent ones).
        assert validation[recommended] >= 0.9 * validation[best], (
            f"{subject.name}: recommended {recommended} "
            f"({validation[recommended]:.1f} req/s) far below best "
            f"{best} ({validation[best]:.1f} req/s)")
