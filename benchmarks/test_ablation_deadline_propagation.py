"""Ablation — propagated per-service deadline vs the raw SLA (§3.2).

Sock Shop's front-end is thin, so propagation barely moves the
threshold there. This ablation instead uses a *deep* invocation chain
whose upstream stages consume a real fraction of the SLA:

    front-end -> aggregator (heavy compute) -> worker (thread pool,
    the adapted resource) -> db

With propagation, the worker's goodput threshold is the SLA minus the
measured upstream processing (aggregator + front-end self times); with
the ablated raw-SLA threshold, the worker is judged against a budget it
does not actually have, so the model over-estimates usable concurrency.
"""

import math

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.app import Application, Call, Compute, Microservice, Operation
from repro.core import (
    FrameworkConfig,
    MonitoringModule,
    SoraController,
    ThreadPoolTarget,
)
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, LogNormal, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

SLA = 0.150
DURATION = 240.0
PEAK_USERS = 300


def build_chain(env, streams, worker_threads=30):
    app = Application(env)

    def svc(name, **kwargs):
        service = Microservice(env, name, streams.stream(name), **kwargs)
        return app.add_service(service)

    front_end = svc("front-end", cores=4.0)
    aggregator = svc("aggregator", cores=8.0, cpu_overhead=0.002)
    worker = svc("worker", cores=2.0, cpu_overhead=0.015,
                 thread_pool_size=worker_threads)
    db = svc("db", cores=4.0, cpu_overhead=0.015)

    db.add_operation(Operation("default", [
        Compute(LogNormal(0.006, cv=0.6))]))
    worker.add_operation(Operation("default", [
        Compute(LogNormal(0.004, cv=0.6)),
        Call("db"),
        Compute(LogNormal(0.002, cv=0.6)),
    ]))
    # The aggregator burns a meaningful share of the SLA upstream of
    # the worker (pre- and post-processing around the call).
    aggregator.add_operation(Operation("default", [
        Compute(LogNormal(0.012, cv=0.4)),
        Call("worker"),
        Compute(LogNormal(0.006, cv=0.4)),
    ]))
    front_end.add_operation(Operation("default", [
        Compute(LogNormal(0.001, cv=0.4)),
        Call("aggregator"),
    ]))
    app.set_entrypoint("go", "front-end", "default")
    app.validate()
    return app, worker


def run_one(propagate: bool):
    env = Environment()
    streams = RandomStreams(19)
    app, worker = build_chain(env, streams)
    monitoring = MonitoringModule(env, app)
    duration = scaled(DURATION)
    trace = WorkloadTrace(
        "osc", duration, PEAK_USERS, PEAK_USERS // 3,
        lambda u: 0.55 + 0.45 * math.sin(2 * math.pi * 5.0 * u))
    driver = ClosedLoopDriver(env, app, "go", trace,
                              streams.stream("drv"), ramp_up=10.0)
    controller = SoraController(
        env, app, monitoring, [ThreadPoolTarget(worker)], sla=SLA,
        config=FrameworkConfig(use_deadline_propagation=propagate))
    controller.start()
    driver.start()
    env.run(until=duration + 2.0)
    latencies = app.latency["go"].response_times()
    thresholds = [a.threshold for a in controller.actions
                  if a.threshold is not None]
    return {
        "goodput": float(np.count_nonzero(latencies <= SLA)) / duration,
        "p95": float(np.percentile(latencies, 95)) if latencies.size
               else 0.0,
        "p99": float(np.percentile(latencies, 99)) if latencies.size
               else 0.0,
        "mean_threshold": (float(np.mean(thresholds))
                           if thresholds else float("nan")),
        "actions": len(controller.actions),
    }


def run_all():
    return {propagate: run_one(propagate)
            for propagate in (True, False)}


def render(results) -> str:
    rows = []
    for propagate, label in ((True, "propagated deadline"),
                             (False, "raw SLA threshold")):
        r = results[propagate]
        rows.append([label, round(r["mean_threshold"] * 1000, 1),
                     round(r["goodput"], 1), round(r["p95"] * 1000, 1),
                     round(r["p99"] * 1000, 1), r["actions"]])
    return ascii_table(
        ["threshold mode", "mean threshold used [ms]", "goodput",
         "p95 [ms]", "p99 [ms]", "adaptations"],
        rows,
        title=f"Ablation: deadline propagation on/off — deep chain "
              f"(SLA {SLA * 1000:.0f} ms, heavy upstream)")


def test_ablation_deadline_propagation(benchmark):
    results = once(benchmark, run_all)
    publish("ablation_deadline_propagation", render(results))
    with_prop, without = results[True], results[False]
    # The propagated threshold must be meaningfully tighter than the
    # SLA (the aggregator eats a visible share of the budget).
    assert with_prop["mean_threshold"] < SLA * 0.95
    # And propagation must not lose goodput.
    assert with_prop["goodput"] >= 0.9 * without["goodput"]
