"""Ablation — polynomial degree sensitivity of knee estimation (§3.3).

The paper: too low a degree cannot expose a valid knee; too high a
degree overfits measurement noise; degrees 5-8 fit a 1-minute profile.
Reproduction: collect one real concurrency-goodput scatter from a Cart
run, then run knee detection with each fixed degree and compare the
recommendation against the sweep-derived optimum.
"""

import math


from benchmarks._common import once, publish, scaled
from repro.app.topologies import build_sock_shop
from repro.core import SCGModel, ScatterModelConfig, ThreadPoolTarget
from repro.experiments.reporting import ascii_table
from repro.metrics.sampler import ConcurrencyGoodputSampler
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

THRESHOLD = 0.200
#: Sweep-calibrated optimum for the 2-core Cart under this workload
#: (see fig03/fig09 results).
TRUE_OPTIMUM = 8
DEGREES = list(range(1, 11))


def collect_scatter():
    env = Environment()
    streams = RandomStreams(17)
    app = build_sock_shop(env, streams, cart_threads=30, cart_cores=2.0)
    target = ThreadPoolTarget(app.service("cart"))
    duration = scaled(120.0)
    trace = WorkloadTrace(
        "osc", duration, 420, 100,
        lambda u: 0.5 + 0.5 * math.sin(2 * math.pi * 6.0 * u))
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=5.0)
    sampler = ConcurrencyGoodputSampler(
        env,
        concurrency_integral=target.concurrency_integral,
        completion_source=target.completion_latencies,
        threshold_provider=lambda: THRESHOLD,
        interval=0.1)
    sampler.start()
    driver.start()
    env.run(until=duration + 2.0)
    return sampler.pairs()


def run_all():
    q, gp = collect_scatter()
    results = {}
    for degree in DEGREES:
        config = ScatterModelConfig(
            min_degree=degree, max_degree=degree,
            allow_argmax_fallback=False)
        estimate = SCGModel(config).estimate(q, gp, threshold=THRESHOLD)
        results[degree] = estimate
    return results


def render(results) -> str:
    rows = []
    for degree, estimate in results.items():
        if estimate is None:
            rows.append([degree, "-", "-", "no valid knee"])
        else:
            error = abs(estimate.optimal_concurrency -
                        TRUE_OPTIMUM) / TRUE_OPTIMUM * 100
            rows.append([degree, estimate.optimal_concurrency,
                         f"{error:.0f}%", estimate.method])
    return ascii_table(
        ["polynomial degree", "estimated optimum",
         f"error vs {TRUE_OPTIMUM}", "note"],
        rows,
        title="Ablation: knee estimate vs polynomial degree "
              "(paper: 5-8 adequate; too low -> no knee, too high -> "
              "noise)")


def test_ablation_poly_degree(benchmark):
    results = once(benchmark, run_all)
    publish("ablation_poly_degree", render(results))
    # Degree 1 (a line) can never produce a knee.
    assert results[1] is None
    # Some mid-range degree must both find a knee and land near the
    # sweep optimum.
    mid = [results[d] for d in (4, 5, 6, 7, 8) if results[d] is not None]
    assert mid, "no mid-range degree produced a knee"
    errors = [abs(e.optimal_concurrency - TRUE_OPTIMUM) for e in mid]
    assert min(errors) <= max(3, TRUE_OPTIMUM // 2)
