"""Table 3 — ConScale vs Sora goodput across traces and SLA thresholds.

Both frameworks adapt the Cart thread pool over a threshold-based
vertical autoscaler (K8s VPA); goodput is evaluated at two SLA
thresholds. ConScale's SCT control loop is latency-agnostic, so its
runs do not depend on the SLA and are shared between the two threshold
columns; Sora's propagated deadline depends on it, so Sora runs once
per SLA.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    TRACE_DURATION,
    once,
    publish,
)
from repro.experiments import (
    parallel_map,
    run_scenario,
    sock_shop_cart_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import TRACE_NAMES, build_trace

#: The paper evaluates 250 ms and 500 ms SLA thresholds.
SLAS = (0.250, 0.500)


def _run_cell(spec):
    """One (controller, trace, sla) cell — module-level for the worker
    pool; ``sla=None`` marks the shared latency-agnostic ConScale run."""
    controller, trace_name, sla = spec
    trace = build_trace(trace_name, duration=TRACE_DURATION,
                        peak_users=PEAK_USERS, min_users=MIN_USERS)
    kwargs = dict(trace=trace, controller=controller, autoscaler="vpa")
    if sla is not None:
        kwargs["sla"] = sla
    return run_scenario(sock_shop_cart_scenario(**kwargs),
                        duration=TRACE_DURATION)


def run_all():
    cells = []
    for trace_name in TRACE_NAMES:
        cells.append(("conscale", trace_name, None))
        for sla in SLAS:
            cells.append(("sora", trace_name, sla))
    results = parallel_map(_run_cell, cells)
    outcome = {}
    for (controller, trace_name, sla), result in zip(cells, results):
        conscale, sora = outcome.setdefault(trace_name, (None, {}))
        if controller == "conscale":
            outcome[trace_name] = (result, sora)
        else:
            sora[sla] = result
    return outcome


def render(outcome) -> str:
    sections = []
    for sla in SLAS:
        rows = []
        for trace_name, (conscale, sora) in outcome.items():
            rows.append([
                trace_name,
                round(conscale.goodput(sla), 0),
                round(sora[sla].goodput(sla), 0),
                round(sora[sla].goodput(sla) /
                      max(1e-9, conscale.goodput(sla)), 2),
            ])
        sections.append(ascii_table(
            ["workload trace", "ConScale goodput", "Sora goodput",
             "Sora/ConScale"],
            rows,
            title=f"Table 3 @ SLA {sla * 1000:.0f} ms "
                  "(Cart + K8s VPA)"))
    return "\n\n".join(sections)


def test_table3_conscale_vs_sora(benchmark):
    outcome = once(benchmark, run_all)
    publish("table3_conscale_vs_sora", render(outcome))
    # Documented divergence (EXPERIMENTS.md): in this substrate the SCT
    # knee coincides with the SCG knee, so the paper's 1.06-1.53x Sora
    # wins appear as statistical ties. The shape claim we can hold is
    # "Sora never materially loses to the latency-agnostic model".
    non_losses = 0
    for _trace_name, (conscale, sora) in outcome.items():
        for sla in SLAS:
            if sora[sla].goodput(sla) >= 0.97 * conscale.goodput(sla):
                non_losses += 1
            # Hard floor: never a collapse.
            assert sora[sla].goodput(sla) >= \
                0.85 * conscale.goodput(sla)
    assert non_losses == len(outcome) * len(SLAS), (
        f"Sora materially lost {len(outcome) * len(SLAS) - non_losses} "
        "cells")
