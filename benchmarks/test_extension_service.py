"""Controller-on-controller SLOs for the standalone service layer.

The tentpole service promises its *own* latency objectives: the wall
time of one recommendation (localization share + deadline propagation
+ SCG estimation for one service) and sustained decisions/sec while
tracking thousands of concurrent series. This bench stresses a
transport-free :class:`repro.service.ControlPlane` in estimate-all
mode (``decide_top_k=0``):

- ingest OpenMetrics snapshots carrying a saturating ``<Q, GP>``
  curve for every series (each with its own knee),
- ingest Jaeger-shaped trace batches so localization and deadline
  propagation run on real aggregates,
- run control rounds that estimate **every** series, and read the
  service's self-telemetry back: recommendation latency P50/P99 from
  its P² sketch and decisions/sec, the same numbers it exports over
  ``/metrics``.

Full scale tracks 1000 series; ``REPRO_BENCH_SCALE`` shrinks the
fleet for smoke runs. Assertions are generous ceilings (they guard
against pathological regressions, not noisy-neighbor jitter): P99
recommendation latency under the 250 ms per-recommendation SLO and
at least 20 decisions/sec.
"""

import time

import numpy as np

from benchmarks._common import SCALE, once, publish, publish_json
from repro.core.scg import ScatterModelConfig
from repro.experiments.reporting import ascii_table
from repro.service import ControlPlane, ServiceConfig, render_snapshot
from repro.tracing.export import export_traces
from repro.tracing.span import Span

#: Concurrent series at full scale (the acceptance floor).
FULL_SERIES = 1000
SERIES = max(32, int(round(FULL_SERIES * min(1.0, SCALE))))
SNAPSHOTS = 40
ROUNDS = 3
TRACED_SERVICES = 64
TRACES = 256


def service_names():
    return [f"svc-{index:04d}" for index in range(SERIES)]


def synthetic_snapshot(step, names, rng):
    """One scrape: every series on its own saturating goodput curve."""
    concurrency = {}
    goodput = {}
    utilization = {}
    for index, name in enumerate(names):
        knee = 4.0 + (index % 13)
        q = 1.0 + ((step + index) % 20)
        concurrency[name] = q
        goodput[name] = max(0.0, 25.0 * q / (1.0 + q / knee)
                            + rng.normal(0.0, 1.0))
        utilization[name] = 0.75 + 0.2 * ((index % 10) / 10.0)
    return render_snapshot(float(step + 1), utilization, concurrency,
                           goodput)


def synthetic_traces(names):
    """front-end -> svc trace batches across the traced subset."""
    roots = []
    for index in range(TRACES):
        name = names[index % min(TRACED_SERVICES, len(names))]
        arrival = 0.05 * index
        root = Span(trace_id=index + 1, service="front-end",
                    operation="request", arrival=arrival)
        root.started = arrival
        child = Span(trace_id=index + 1, service=name,
                     operation="work", arrival=arrival + 0.005,
                     parent=root)
        child.started = child.arrival + 0.001
        child.departure = child.arrival + 0.15 + 0.01 * (index % 7)
        root.departure = child.departure + 0.005
        roots.append(root)
    return export_traces(roots)


def run_bench():
    config = ServiceConfig(
        decide_top_k=0,  # estimate-all: the stress mode
        max_series=max(4096, SERIES),
        max_pending=SNAPSHOTS + 1,
        exclude=("front-end",),
        scatter=ScatterModelConfig(min_samples=30, min_distinct=5,
                                   quantum=1.0))
    plane = ControlPlane(config)
    names = service_names()
    rng = np.random.default_rng(17)

    ingest_start = time.perf_counter()
    for step in range(SNAPSHOTS):
        plane.ingest_metrics(synthetic_snapshot(step, names, rng))
        if plane.pending >= config.max_pending - 1:
            plane.tick()
    plane.ingest_traces(synthetic_traces(names))
    ingest_wall = time.perf_counter() - ingest_start

    round_walls = []
    for _round in range(ROUNDS):
        start = time.perf_counter()
        plane.tick()
        round_walls.append(time.perf_counter() - start)

    status = plane.status()
    latency = status["recommendation_latency"]
    return {
        "series": SERIES,
        "snapshots": SNAPSHOTS,
        "traces": TRACES,
        "rounds": plane.rounds,
        "decisions": plane.decisions_made,
        "recommendations": len(plane.recommendations),
        "ingest_wall_s": round(ingest_wall, 3),
        "snapshots_per_sec": round(SNAPSHOTS / ingest_wall, 1),
        "round_wall_s": [round(w, 3) for w in round_walls],
        "rec_p50_ms": latency["p50_ms"],
        "rec_p99_ms": latency["p99_ms"],
        "rec_mean_ms": latency["mean_ms"],
        "decisions_per_sec": status["decisions_per_sec"],
        "slo_compliance": status["slo"]["compliance"],
    }


def test_extension_service(benchmark):
    result = once(benchmark, run_bench)

    # Acceptance floors (generous: regression guards, not records).
    assert result["decisions"] >= SERIES * ROUNDS
    assert result["recommendations"] >= SERIES * 0.9
    assert result["rec_p99_ms"] is not None
    assert result["rec_p99_ms"] < 250.0, result
    assert result["decisions_per_sec"] > 20.0, result
    assert result["slo_compliance"] >= 0.9, result

    rows = [
        ["tracked series", str(result["series"])],
        ["control rounds (estimate-all)", str(result["rounds"])],
        ["decisions made", str(result["decisions"])],
        ["recommendation P50", f"{result['rec_p50_ms']:.2f} ms"],
        ["recommendation P99", f"{result['rec_p99_ms']:.2f} ms"],
        ["decisions / second", f"{result['decisions_per_sec']:.0f}"],
        ["per-rec SLO compliance",
         f"{result['slo_compliance'] * 100:.1f}%"],
        ["snapshot ingest rate",
         f"{result['snapshots_per_sec']:.0f}/s "
         f"({result['series']} series each)"],
    ]
    text = ascii_table(["metric", "value"], rows,
                       title=f"service controller SLOs "
                             f"({result['series']} series)")
    publish("extension_service", text)
    publish_json("extension_service", result)
