"""Figure 3 — the optimal soft resource allocation shifts at runtime.

Six panels sweeping pool sizes under fixed workloads:

- (a)-(d): Cart thread pool under combinations of CPU limit (4-core /
  2-core) and RT threshold (150/250/350 ms); the goodput-maximizing
  allocation shifts with the core count, and looser thresholds make
  smaller pools competitive (the paper's threshold sensitivity).
- (e)-(f): Post Storage request connections under light (2-post) vs
  heavy (10-post) requests; the optimum shifts with the system state.

The thread grid adds 8/15 to the paper's {3,5,10,30,80,200} because our
substrate's optima sit between the paper's grid points (service demands
are ~5-10x lighter than the testbed's); over-allocation collapse and
all shift directions are preserved.
"""

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.app.topologies import (
    build_social_network,
    build_sock_shop,
    set_request_weight,
)
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

THREAD_GRID = [3, 5, 8, 10, 15, 30, 80, 200]
CONN_GRID = [5, 10, 15, 30, 80, 200]
PANEL_DURATION = 60.0

CART_CASES = [
    ("(a) 4-core Cart, 250 ms threshold", 4.0, 0.250, 620),
    ("(b) 4-core Cart, 150 ms threshold", 4.0, 0.150, 620),
    ("(c) 2-core Cart, 250 ms threshold", 2.0, 0.250, 310),
    ("(d) 2-core Cart, 350 ms threshold", 2.0, 0.350, 310),
]


def flat_trace(users, duration):
    return WorkloadTrace("flat", duration, users, users, lambda u: 1.0)


def run_cart(threads: int, cores: float, users: int, seed: int = 1):
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=threads,
                          cart_cores=cores)
    duration = scaled(PANEL_DURATION)
    driver = ClosedLoopDriver(env, app, "cart",
                              flat_trace(users, duration),
                              streams.stream("drv"), ramp_up=5.0)
    driver.start()
    env.run(until=duration + 2.0)
    return app.latency["cart"].response_times(), duration


def run_post_storage(connections: int, posts: int, users: int = 500,
                     seed: int = 1):
    env = Environment()
    streams = RandomStreams(seed)
    app = build_social_network(env, streams,
                               post_storage_connections=connections,
                               post_storage_replicas=2)
    set_request_weight(app, posts)
    duration = scaled(PANEL_DURATION)
    driver = ClosedLoopDriver(env, app, "read_home_timeline",
                              flat_trace(users, duration),
                              streams.stream("drv"), ramp_up=5.0)
    driver.start()
    env.run(until=duration + 2.0)
    return app.latency["read_home_timeline"].response_times(), duration


def goodput(latencies, threshold, duration) -> float:
    return float(np.count_nonzero(latencies <= threshold)) / duration


def render_panel(title, grid, goodputs) -> tuple[str, int | None]:
    peak = max(goodputs) or 1.0
    # A panel where every allocation is within 3% of the best carries
    # no optimum signal (the pool is non-binding) — report the tie.
    tie = all(gp >= 0.97 * peak for gp in goodputs)
    best = None if tie else grid[int(np.argmax(goodputs))]
    rows = [[size, round(gp, 1), round(gp / peak, 3),
             "<= optimal" if size == best else ""]
            for size, gp in zip(grid, goodputs)]
    suffix = "  [all allocations tie: pool non-binding]" if tie else ""
    table = ascii_table(
        ["pool size", "goodput [req/s]", "normalized", ""],
        rows, title=title + suffix)
    return table, best


def run_all():
    cart_runs: dict[tuple[float, int], tuple] = {}
    for _title, cores, _threshold, users in CART_CASES:
        for threads in THREAD_GRID:
            key = (cores, threads)
            if key not in cart_runs:
                cart_runs[key] = run_cart(threads, cores, users)
    cart_goodputs = {}
    for title, cores, threshold, _users in CART_CASES:
        values = []
        for threads in THREAD_GRID:
            latencies, duration = cart_runs[(cores, threads)]
            values.append(goodput(latencies, threshold, duration))
        cart_goodputs[title] = values

    post_goodputs = {}
    for title, posts in (
            ("(e) Post Storage, light requests (2 posts)", 2),
            ("(f) Post Storage, heavy requests (10 posts)", 10)):
        values = []
        for connections in CONN_GRID:
            latencies, duration = run_post_storage(connections, posts)
            values.append(goodput(latencies, 0.100, duration))
        post_goodputs[title] = values
    return cart_goodputs, post_goodputs


def test_fig03_optimal_shift(benchmark):
    cart_goodputs, post_goodputs = once(benchmark, run_all)
    panels = []
    optima = {}
    for title, values in cart_goodputs.items():
        table, best = render_panel(title, THREAD_GRID, values)
        panels.append(table)
        optima[title[1]] = best
    for title, values in post_goodputs.items():
        table, best = render_panel(title, CONN_GRID, values)
        panels.append(table)
        optima[title[1]] = best

    text = "\n\n".join(panels)
    text += ("\n\nMeasured optima per panel "
             "(paper: a=30, b=80, c=10, d=5, e=10, f=30): "
             f"{optima}")

    # Threshold-sensitivity margin: how competitive the small (5-thread)
    # allocation is against the best, per threshold, at 2 cores.
    c_vals = cart_goodputs[CART_CASES[2][0]]
    d_vals = cart_goodputs[CART_CASES[3][0]]
    small = THREAD_GRID.index(5)
    margin_250 = c_vals[small] / (max(c_vals) or 1.0)
    margin_350 = d_vals[small] / (max(d_vals) or 1.0)
    text += (f"\nSmall-pool competitiveness at 2 cores: "
             f"{margin_250:.2f} @250ms vs {margin_350:.2f} @350ms "
             f"(paper: looser threshold favors the smaller pool)")
    publish("fig03_optimal_shift", text)

    # Shape assertions (§2.3):
    assert optima["a"] is not None and optima["c"] is not None
    # more cores -> larger optimal thread pool,
    assert optima["a"] > optima["c"]
    # looser threshold makes the small allocation more competitive,
    assert margin_350 >= margin_250
    # heavy requests produce a sharp interior optimum; light may tie.
    assert optima["f"] is not None
    # over-allocation always collapses where an optimum exists.
    assert all(best != 200 for best in optima.values()
               if best is not None)
