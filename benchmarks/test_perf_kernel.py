"""Micro-benchmarks of the substrate itself.

Not a paper reproduction — these track the cost of the hot paths so
regressions in simulator performance are visible: event throughput of
the DES kernel, the PS-CPU virtual-time scheduler, pool handoff, and a
full Sock Shop request round trip.
"""

import numpy as np

from benchmarks._common import SCALE, once, publish_json
from repro.app.topologies import build_sock_shop
from repro.core import SCGModel
from repro.experiments.bench import run_bench_suite
from repro.resources import ProcessorSharingCpu, SoftResourcePool
from repro.sim import Environment, RandomStreams


def test_perf_event_loop_timeout_chain(benchmark):
    """Schedule+process cost of a long timeout chain."""

    def run():
        env = Environment()

        def chain(env):
            for _ in range(10_000):
                yield env.timeout(0.001)

        env.process(chain(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_perf_cpu_processor_sharing(benchmark):
    """10k jobs through a contended PS CPU."""

    def run():
        env = Environment()
        cpu = ProcessorSharingCpu(env, cores=4, overhead=0.01)

        def feeder(env):
            for _ in range(10_000):
                cpu.submit(0.002)
                yield env.timeout(0.0005)

        env.process(feeder(env))
        env.run()
        return cpu.work_done()

    work = benchmark(run)
    assert work > 0


def test_perf_pool_handoff(benchmark):
    """Acquire/release churn through a small pool with queueing."""

    def run():
        env = Environment()
        pool = SoftResourcePool(env, capacity=4)

        def worker(env):
            for _ in range(100):
                yield pool.acquire()
                yield env.timeout(0.001)
                pool.release()

        for _ in range(50):
            env.process(worker(env))
        env.run()
        return pool.total_granted

    granted = benchmark(run)
    assert granted == 5000


def test_perf_sock_shop_request_roundtrip(benchmark):
    """End-to-end cost of simulating 500 cart requests."""

    def run():
        env = Environment()
        app = build_sock_shop(env, RandomStreams(1))

        def feeder(env):
            for _ in range(500):
                app.submit("cart")
                yield env.timeout(0.004)

        env.process(feeder(env))
        env.run()
        return app.latency["cart"].total

    completed = benchmark(run)
    assert completed == 500


def test_perf_kernel_report(benchmark):
    """Machine-readable throughput report (``BENCH_kernel.json``).

    Aggregates the same hot paths as the micro-benchmarks above into
    one JSON artifact: events/sec for the kernel and PS CPU,
    requests/sec for the Sock Shop round trip, and the parallel
    fan-out speedup. The perf-regression smoke test
    (``tests/test_perf_regression.py``) diffs this against the
    committed baseline. Honors ``REPRO_BENCH_SCALE``; reduced-scale
    runs land in ``results/smoke/`` and never touch the committed
    full-scale artifact.
    """
    report = once(benchmark,
                  lambda: run_bench_suite(scale=SCALE, repeats=3,
                                          include_scale_sweep=True))
    path = publish_json("BENCH_kernel", report)
    assert path.exists()
    stats = report["benchmarks"]
    assert stats["timeout_chain"]["events_per_sec"] > 0
    assert stats["sock_shop"]["requests_per_sec"] > 0
    assert stats["parallel_fanout"]["identical_results"], (
        "parallel fan-out must reproduce the serial results exactly")


def test_perf_scg_estimate(benchmark):
    """One SCG estimation pass over a 600-pair window."""
    rng = np.random.default_rng(0)
    q = rng.uniform(0.5, 15.0, 600)
    gp = np.clip(np.where(q < 8, 280 * q / 8, 280 - 6 * (q - 8)) +
                 rng.normal(0, 15, 600), 0, None)
    model = SCGModel()

    estimate = benchmark(lambda: model.estimate(q, gp, threshold=0.2))
    assert estimate is not None
