"""Figure 10 — FIRM vs FIRM+Sora timeline under Steep Tri Phase.

The paper's walkthrough: FIRM scales the Cart CPU during the overload
phase, but without thread-pool re-adaptation the new cores idle behind
the stale allocation; Sora's Concurrency Adapter re-sizes the pool on
each hardware event and keeps refining it, stabilizing response time.

Regenerates the three panels per system (RT+goodput, CPU limit vs
busy, running threads) on a shared grid.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import ascii_table, series_table
from repro.workloads import steep_tri_phase


def run_pair():
    results = {}
    for controller in ("none", "sora"):
        trace = steep_tri_phase(duration=TRACE_DURATION,
                                peak_users=PEAK_USERS,
                                min_users=MIN_USERS)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller=controller, autoscaler="firm",
            sla=SLA)
        results[controller] = run_scenario(scenario,
                                           duration=TRACE_DURATION)
    return results


def render(results) -> str:
    sections = []
    for controller, label in (("none", "FIRM (hardware-only)"),
                              ("sora", "FIRM + Sora")):
        result = results[controller]
        rt = result.response_time_series(interval=10.0)
        gp = result.goodput_series(interval=10.0)
        sections.append(series_table(
            {
                "p95 RT [ms]": (rt[0], rt[1] * 1000.0),
                "goodput [req/s]": gp,
                "CPU limit [cores]": result.series("cart.cores"),
                "CPU busy [cores]": result.series("cart.busy_cores"),
                "threads": result.series("cart.threads.allocation"),
            },
            step=TRACE_DURATION / 12, until=TRACE_DURATION,
            title=f"--- {label} ---"))
    rows = []
    for controller, label in (("none", "FIRM"), ("sora", "FIRM+Sora")):
        result = results[controller]
        summary = result.summary_row()
        rows.append([label, summary["goodput_rps"], summary["p95_ms"],
                     summary["p99_ms"], len(result.scale_events),
                     len(result.adaptation_actions)])
    sections.append(ascii_table(
        ["system", "goodput", "p95 [ms]", "p99 [ms]", "HW scalings",
         "pool adaptations"],
        rows, title="Fig. 10 summary (Steep Tri Phase, SLA 400 ms)"))
    return "\n\n".join(sections)


def test_fig10_firm_vs_sora(benchmark):
    results = once(benchmark, run_pair)
    publish("fig10_firm_vs_sora", render(results))
    firm, sora = results["none"], results["sora"]
    # Shape: Sora improves goodput and tames the tail.
    assert sora.goodput() > firm.goodput()
    assert sora.percentile(99) < firm.percentile(99)
    # Sora actually re-adapts the pool; FIRM never touches it.
    assert sora.adaptation_actions
    assert not firm.adaptation_actions
