"""Extension — re-adaptation after injected CPU interference.

A noisy neighbor lands on the Post Storage path mid-run (persistent
``InterferenceFault`` from :mod:`repro.faults`): every unit of MongoDB
work takes 4x the CPU, shifting the connection-pool knee far below the
pre-fault optimum. The offered load itself never changes — this is a
pure *system-state* regime shift, the scenario §2.3 argues soft
resources must re-adapt to.

With a static (liberally sized) pool, the stale allocation keeps
over-admitting concurrency into the slowed MongoDB; the multithreading
overhead spiral melts it and goodput never comes back. Sora's
change detector flags the processing-time shift, the estimator window
is flushed, and the controller re-converges onto the post-fault knee:
goodput returns to its pre-fault level once the backlog drains.

An open-loop (constant-rate) driver replaces the scenario's default
closed loop so "recovered" has a crisp meaning: the offered load is
identical before and after the fault, and goodput under the SLA is
directly comparable across windows.
"""

import numpy as np

import repro.obs as obs_mod
from benchmarks._common import (
    RESULTS_DIR,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.experiments import (
    run_scenario,
    series_table,
    social_network_drift_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.faults import FaultPlan
from repro.obs import SLOSpec, render_dashboard_html, render_text
from repro.tracing import (
    CriticalPathAggregator,
    TailSampler,
    sampler_stream,
)
from repro.workloads import OpenLoopDriver, WorkloadTrace

#: Longer than the Fig. 10-12 runs: the post-fault stretch must leave
#: room for re-convergence, backlog drain, *and* a long healthy tail —
#: the tail-sampling storage bound is measured over the whole run, so
#: the outage has to be a minority of the traffic (as it would be in
#: any fleet that pages on a 100-second melt).
DURATION = 2.5 * TRACE_DURATION
FAULT_AT = TRACE_DURATION / 2.0
RATE = 450.0  # req/s, just under the healthy system's knee
MONGO_FACTOR = 4.0  # noisy neighbor: 4x CPU per unit of Mongo work


def interference_plan() -> FaultPlan:
    """Persistent interference on the Post Storage path (no recovery:
    the knee *stays* shifted and the controller must follow it)."""
    return FaultPlan.from_dict({"faults": [
        {"kind": "interference", "service": "post-storage-mongodb",
         "at": FAULT_AT, "demand_factor": MONGO_FACTOR},
        {"kind": "interference", "service": "post-storage",
         "at": FAULT_AT, "demand_factor": MONGO_FACTOR ** 0.5},
    ]})


def window_goodput(result, since: float, until: float) -> float:
    """Mean goodput (req/s under the SLA) over ``[since, until)``."""
    mask = (result.completion_times >= since) & \
        (result.completion_times < until)
    good = np.count_nonzero(result.response_times[mask] <= SLA)
    return good / (until - since)


def run_pair():
    results = {}
    scopes = {}
    for controller in ("none", "sora"):
        obs = (obs_mod.Observability(max_records=8192)
               if controller == "sora" else obs_mod.NULL)
        trace = WorkloadTrace("flat", DURATION, 1, 1, lambda u: 1.0)
        scenario = social_network_drift_scenario(
            trace=trace, controller=controller, autoscaler="hpa",
            sla=SLA, obs=obs, fault_plan=interference_plan())
        # Constant offered load instead of the closed loop (see module
        # docstring); the trace above only labels the scenario.
        scenario.drivers = [OpenLoopDriver(
            scenario.env, scenario.app, "read_home_timeline", RATE,
            scenario.streams.stream("openloop"), duration=DURATION)]
        if scenario.controller is not None:
            scenario.controller.config.detect_drift = True
        if controller == "sora":
            # Tail-based sampling at fleet-realistic retention: keep
            # every SLO-violating/cancelled trace, 5% of the healthy
            # bulk. Localization switches to the pre-sampling streaming
            # aggregates so the controller's nomination is identical to
            # the unsampled run's.
            scenario.app.warehouse.attach(
                sampler=TailSampler(
                    0.05, sampler_stream(scenario.streams),
                    slo_threshold=SLA),
                analytics=CriticalPathAggregator())
            obs.attach_trace_analytics(scenario.app.warehouse)
            scenario.controller.config.localize_from_aggregates = True
        if obs:
            # Guard the run with the reporting SLA so the burn-rate
            # engine pages on the interference-induced outage.
            scenario.slo = SLOSpec(name="timeline-rt",
                                   latency_threshold=SLA)
        results[controller] = run_scenario(scenario, duration=DURATION)
        scopes[controller] = (obs, scenario)
    return results, scopes


def render(results) -> str:
    sections = [
        f"noisy neighbor lands on post-storage-mongodb at "
        f"t={FAULT_AT:.0f} s ({MONGO_FACTOR:.0f}x CPU demand, "
        f"persistent); offered load constant at {RATE:.0f} req/s"]
    conn_key = "home-timeline.poststorage->post-storage"
    for controller, label in (("none", "HPA + static pool"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        rt = result.response_time_series(interval=10.0)
        gp = result.goodput_series(interval=10.0)
        sections.append(series_table(
            {
                "p95 RT [ms]": (rt[0], rt[1] * 1000.0),
                "goodput [req/s]": gp,
                "conns alloc": result.series(f"{conn_key}.allocation"),
                "conns in use": result.series(f"{conn_key}.in_use"),
                "replicas": result.series("post-storage.replicas"),
            },
            step=DURATION / 12, until=DURATION,
            title=f"--- {label} ---"))
    rows = []
    for controller, label in (("none", "HPA + static pool"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        pre = window_goodput(result, 20.0, FAULT_AT)
        post = window_goodput(result, 2.0 * DURATION / 3.0, DURATION)
        rows.append([label, round(pre, 1), round(post, 1),
                     f"{post / pre:.0%}" if pre else "n/a",
                     len(result.adaptation_actions)])
    sections.append(ascii_table(
        ["system", "goodput pre-fault", "goodput post-fault",
         "recovered", "adaptations"],
        rows, title="Interference summary (flat open-loop load, "
                    "SLA 400 ms)"))
    return "\n\n".join(sections)


def test_extension_interference(benchmark):
    (results, scopes) = once(benchmark, run_pair)
    publish("extension_interference", render(results))

    static, sora = results["none"], results["sora"]
    pre_static = window_goodput(static, 20.0, FAULT_AT)
    pre_sora = window_goodput(sora, 20.0, FAULT_AT)
    post_window = (2.0 * DURATION / 3.0, DURATION)
    post_static = window_goodput(static, *post_window)
    post_sora = window_goodput(sora, *post_window)

    # Sora re-converges to the shifted knee: post-fault goodput
    # recovers to at least its pre-fault level once the backlog
    # drains. The static pool keeps over-admitting and never does.
    assert post_sora >= pre_sora
    assert post_static < pre_static
    assert post_sora > post_static

    # The re-adaptation is visible: applied pool changes after the
    # fault, triggered by the changepoint detector flagging the shift.
    controller = scopes["sora"][1].controller
    assert any(t > FAULT_AT for t, _name in controller.drift_detections)
    assert any(a.time > FAULT_AT and a.after != a.before
               for a in sora.adaptation_actions)

    # The explainability report shows the injected fault next to the
    # re-adaptation decisions.
    obs = scopes["sora"][0]
    assert len(obs.decisions.fault_events()) == 2
    report = render_text(obs, title="interference extension")
    publish("extension_interference_obs", report)
    assert "Injected faults" in report
    assert "interference" in report
    applied = [t for t, _d in obs.decisions.applied() if t > FAULT_AT]
    assert applied, "no applied adaptation after the fault in the log"

    # The burn-rate engine pages on the outage: the fast-burn alert
    # fires after the interference onset and *before* goodput bottoms
    # out — the alert leads the damage, it does not trail it.
    fired = [r for r in obs.decisions.alerts()
             if r.rule == "fast-burn" and r.phase == "fire"]
    assert fired, "interference outage never tripped the fast-burn rule"
    if fired:  # smoke runs are shorter than the alert windows
        first_fire = min(r.time for r in fired)
        assert first_fire > FAULT_AT
        gp_times, gp_values = sora.goodput_series(interval=10.0)
        post = gp_times >= FAULT_AT
        bottom = gp_times[post][np.argmin(gp_values[post])]
        assert first_fire < bottom, (
            f"alert at t={first_fire:.0f} trailed the goodput bottom "
            f"at t={bottom:.0f}")

    # Tail sampling held its guarantee through the outage: every
    # SLO-violating trace retained, yet the warehouse stored only a
    # fraction of the total volume.
    warehouse = scopes["sora"][1].app.warehouse
    sampler = warehouse.sampler
    assert sampler.slo_violating_total > 0, (
        "interference produced no SLO-violating traces to retain")
    assert sampler.slo_retention == 1.0, (
        f"tail sampler dropped SLO violators: "
        f"{sampler.coverage()['slo_violating']}")
    assert sampler.stored_fraction <= 0.20, (
        f"stored {sampler.stored_fraction:.1%} of traces, want <= 20%")
    assert warehouse.total_recorded == sampler.total
    coverage = warehouse.coverage()
    print(f"sampling coverage: kept {coverage['kept']}"
          f"/{coverage['total']} "
          f"({sampler.stored_fraction:.1%}), by reason "
          f"{coverage['kept_by_reason']}")

    # One time axis tells the whole story: the annotated dashboard
    # shows the fault, the page, the Page-Hinkley drift detection, and
    # the pool re-convergence decisions over the telemetry series.
    html = render_dashboard_html(obs, title="interference extension")
    for marker in ("marker-fault", "marker-alert", "marker-drift",
                   "marker-decision"):
        assert marker in html, f"dashboard is missing {marker}s"
    assert "Critical-path flame view" in html
    assert "Sampling coverage" in html
    path = RESULTS_DIR / "extension_interference_dashboard.html"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(html)
    print(f"dashboard written to {path}")
