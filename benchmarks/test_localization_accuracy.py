"""§6 — critical-service localization accuracy.

The paper cites FIRM's ~93% localization accuracy at scale. This bench
plants a known bottleneck in the Sock Shop topology (by shrinking one
service's CPU), runs a short loaded window, and checks whether the
two-step localizer (utilization screen + Pearson ranking) nominates the
planted service. Accuracy is reported over all plants x seeds.
"""

from benchmarks._common import once, publish, scaled
from repro.app.topologies import build_sock_shop
from repro.core import CriticalServiceLocator, MonitoringModule
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

#: Services we can plant a bottleneck in (on the browse fan-out paths).
PLANTS = ["cart", "catalogue", "cart-db", "catalogue-db"]
SEEDS = [1, 2, 3]
DURATION = 60.0
USERS = 320


def run_case(plant: str, seed: int) -> tuple[str | None, str]:
    env = Environment()
    streams = RandomStreams(seed)
    app = build_sock_shop(env, streams, cart_threads=40)
    # Plant the bottleneck: starve the target service's CPU.
    app.service(plant).set_cores(0.7)
    monitoring = MonitoringModule(env, app)
    monitoring.start()
    duration = scaled(DURATION)
    trace = WorkloadTrace("flat", duration, USERS, USERS, lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "browse", trace,
                              streams.stream("drv"), ramp_up=5.0)
    driver.start()
    env.run(until=duration + 2.0)
    locator = CriticalServiceLocator(exclude=("front-end",))
    window = min(30.0, duration / 2)
    traces = app.warehouse.traces(env.now - window, env.now)
    report = locator.locate(traces, monitoring.utilizations(window))
    return report.critical_service, " -> ".join(report.dominant_path)


def run_all():
    outcome = []
    for plant in PLANTS:
        for seed in SEEDS:
            nominated, path = run_case(plant, seed)
            outcome.append((plant, seed, nominated, path))
    return outcome


def render(outcome) -> tuple[str, float]:
    rows = []
    hits = 0
    for plant, seed, nominated, path in outcome:
        correct = nominated == plant
        hits += int(correct)
        rows.append([plant, seed, nominated or "-",
                     "OK" if correct else "miss", path])
    accuracy = hits / len(outcome) * 100
    table = ascii_table(
        ["planted bottleneck", "seed", "nominated", "", "dominant path"],
        rows,
        title=f"Localization accuracy: {accuracy:.0f}% "
              f"({hits}/{len(outcome)}; paper cites ~93% for FIRM)")
    return table, accuracy


def test_localization_accuracy(benchmark):
    outcome = once(benchmark, run_all)
    table, accuracy = render(outcome)
    publish("localization_accuracy", table)
    assert accuracy >= 75.0, f"accuracy {accuracy:.0f}% too low"
