"""Ablation — estimation window length (§4.1).

The paper picks a 60 s window: long enough to accumulate ~600 pairs at
100 ms granularity, short enough to stay agile to workload and system
changes. This ablation runs Sora with different windows on the same
bursty trace.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.core.estimator import EstimatorConfig
from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import ascii_table
from repro.workloads import quick_varying

WINDOWS = [15.0, 30.0, 60.0, 120.0]


def run_all():
    results = {}
    for window in WINDOWS:
        trace = quick_varying(duration=TRACE_DURATION,
                              peak_users=PEAK_USERS,
                              min_users=MIN_USERS)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller="sora", autoscaler="firm", sla=SLA)
        # Rewire the estimators with the ablated window.
        for estimator in scenario.controller.estimators.values():
            estimator.config = EstimatorConfig(window=window)
            estimator.sampler.interval = \
                estimator.config.sampling_interval
        results[window] = run_scenario(scenario, duration=TRACE_DURATION)
    return results


def render(results) -> str:
    rows = []
    for window, result in results.items():
        summary = result.summary_row()
        rows.append([f"{window:.0f} s", summary["goodput_rps"],
                     summary["p95_ms"], summary["p99_ms"],
                     len(result.adaptation_actions)])
    return ascii_table(
        ["window", "goodput", "p95 [ms]", "p99 [ms]", "adaptations"],
        rows,
        title="Ablation: estimation window length "
              "(Quick Varying, SLA 400 ms; paper default 60 s)")


def test_ablation_window(benchmark):
    results = once(benchmark, run_all)
    publish("ablation_window", render(results))
    goodputs = {w: r.goodput() for w, r in results.items()}
    # Every window setting keeps the controller functional...
    assert all(g > 0 for g in goodputs.values())
    # ...and the paper's default (60 s) is within 15% of the best.
    assert goodputs[60.0] >= 0.85 * max(goodputs.values())
