"""Figure 4 — response-time distributions under two thread allocations.

The paper's semi-log histograms for the 4-core Cart show why the
optimal allocation depends on the threshold: the large allocation's
distribution has a taller fast peak (better under a tight threshold)
but a heavier tail (worse under a loose one), so the goodput ordering
of the two allocations reverses between thresholds.

Regenerates: the two histograms (text bins) and a threshold sweep
reporting the goodput of each allocation and where the ordering flips.
"""

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.app.topologies import build_sock_shop
from repro.experiments.reporting import ascii_table, sparkline
from repro.metrics import response_time_histogram
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

SMALL_ALLOC = 8
LARGE_ALLOC = 15
CORES = 4.0
USERS = 620
DURATION = 120.0


def run_one(threads: int):
    env = Environment()
    streams = RandomStreams(11)
    app = build_sock_shop(env, streams, cart_threads=threads,
                          cart_cores=CORES)
    duration = scaled(DURATION)
    trace = WorkloadTrace("flat", duration, USERS, USERS, lambda u: 1.0)
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=5.0)
    driver.start()
    env.run(until=duration + 2.0)
    return app.latency["cart"].response_times(), duration


def run_pair():
    return {threads: run_one(threads)
            for threads in (SMALL_ALLOC, LARGE_ALLOC)}


def render(results) -> tuple[str, list]:
    sections = []
    for threads, (latencies, _duration) in results.items():
        centers, counts = response_time_histogram(
            latencies, bin_width=0.025, maximum=0.7)
        log_counts = np.log10(np.maximum(counts, 1))
        sections.append(
            f"--- {threads} threads: response-time histogram "
            f"(25 ms bins, log scale) ---\n"
            f"  {sparkline(log_counts, width=28)}   "
            f"n={latencies.size}  p50={np.percentile(latencies, 50) * 1000:.0f} ms  "
            f"p95={np.percentile(latencies, 95) * 1000:.0f} ms")

    rows = []
    crossovers = []
    previous_order = None
    for threshold in (0.020, 0.035, 0.050, 0.100, 0.150, 0.250, 0.350):
        goodputs = {}
        for threads, (latencies, duration) in results.items():
            goodputs[threads] = float(
                np.count_nonzero(latencies <= threshold)) / duration
        order = (goodputs[SMALL_ALLOC] >= goodputs[LARGE_ALLOC])
        if previous_order is not None and order != previous_order:
            crossovers.append(threshold)
        previous_order = order
        winner = SMALL_ALLOC if order else LARGE_ALLOC
        rows.append([f"{threshold * 1000:.0f} ms",
                     round(goodputs[SMALL_ALLOC], 1),
                     round(goodputs[LARGE_ALLOC], 1),
                     f"{winner} threads"])
    sections.append(ascii_table(
        ["RT threshold", f"goodput @{SMALL_ALLOC} thr",
         f"goodput @{LARGE_ALLOC} thr", "winner"],
        rows,
        title="Goodput vs threshold (the paper's ordering reversal)"))
    return "\n\n".join(sections), crossovers


def test_fig04_rt_distribution(benchmark):
    results = once(benchmark, run_pair)
    text, crossovers = render(results)
    text += (f"\n\nOrdering flips at threshold(s): "
             f"{[f'{c * 1000:.0f} ms' for c in crossovers] or 'none observed'}")
    publish("fig04_rt_distribution", text)
    small, _d1 = results[SMALL_ALLOC]
    large, _d2 = results[LARGE_ALLOC]
    # Shape: the larger pool's distribution must have the heavier tail
    # or the smaller pool the slower bulk — i.e. they must differ.
    assert np.percentile(small, 50) != np.percentile(large, 50) or \
        np.percentile(small, 99) != np.percentile(large, 99)
