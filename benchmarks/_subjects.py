"""Calibrated estimation subjects shared by the Fig. 9 and Table 1
benches.

Each subject pins one of the paper's three instrumented soft resources
at an operating point where the resource actually *binds* (an interior
goodput optimum exists), so model-validation and accuracy measurements
are meaningful:

- **Cart threads**: the 2-core SpringBoot-style Cart under an
  oscillating load that sweeps its thread pool through under- and
  over-allocation.
- **Catalogue DB connections**: Catalogue given enough CPU that the
  database stage (heavier per-query demand) is the contended stage its
  connection pool gates.
- **Post Storage request connections**: the heavy (10-post) request
  mix, under which connection holding times stretch on the downstream
  store (cf. Fig. 3(f)).
"""

from __future__ import annotations

import math

import numpy as np

from repro.app.topologies import (
    build_social_network,
    build_sock_shop,
    set_request_weight,
)
from repro.core import ClientPoolTarget, ThreadPoolTarget
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

THRESHOLD = 0.200


def oscillating(duration: float, peak: int, low: int) -> WorkloadTrace:
    """The bursty profile used for scatter collection (6 cycles)."""
    return WorkloadTrace(
        "osc", duration, peak, low,
        lambda u: 0.5 + 0.5 * math.sin(2 * math.pi * 6.0 * u))


class EstimationSubject:
    """A service + soft resource + calibrated workload."""

    def __init__(self, name: str, build, request_type: str,
                 peak_users: int, sweep_candidates: list[int]) -> None:
        self.name = name
        self.build = build  # (env, streams, allocation) -> (app, target)
        self.request_type = request_type
        self.peak_users = peak_users
        self.sweep_candidates = sweep_candidates

    def start_run(self, allocation: int, duration: float, seed: int):
        """Assemble app + driver; returns (env, app, target)."""
        env = Environment()
        streams = RandomStreams(seed)
        app, target = self.build(env, streams, allocation)
        trace = oscillating(duration, self.peak_users,
                            self.peak_users // 4)
        driver = ClosedLoopDriver(env, app, self.request_type, trace,
                                  streams.stream("drv"), ramp_up=5.0)
        driver.start()
        return env, app, target

    def goodput(self, app, duration: float) -> float:
        latencies = app.latency[self.request_type].response_times()
        return float(
            np.count_nonzero(latencies <= THRESHOLD)) / duration


def _build_cart(env, streams, allocation):
    app = build_sock_shop(env, streams, cart_threads=allocation,
                          cart_cores=2.0)
    return app, ThreadPoolTarget(app.service("cart"))


def _build_catalogue(env, streams, allocation):
    app = build_sock_shop(env, streams,
                          catalogue_db_connections=allocation,
                          catalogue_cores=4.0,
                          catalogue_db_demand_ms=12.0)
    return app, ClientPoolTarget(app.service("catalogue"), "db",
                                 app.service("catalogue-db"))


def _build_post_storage(env, streams, allocation):
    app = build_social_network(env, streams,
                               post_storage_connections=allocation,
                               post_storage_replicas=1)
    set_request_weight(app, 10)  # heavy requests: conns bind
    return app, ClientPoolTarget(app.service("home-timeline"),
                                 "poststorage",
                                 app.service("post-storage"))


CART = EstimationSubject("Cart threads", _build_cart, "cart", 420,
                         [4, 6, 8, 10, 15])
CATALOGUE = EstimationSubject("Catalogue DB conns", _build_catalogue,
                              "catalogue", 420, [3, 4, 5, 6, 7, 8])
POST_STORAGE = EstimationSubject("Post Storage conns",
                                 _build_post_storage,
                                 "read_home_timeline", 480,
                                 [3, 4, 6, 8, 10])

ALL_SUBJECTS = [CART, CATALOGUE, POST_STORAGE]
