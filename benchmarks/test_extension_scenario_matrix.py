"""Extension — scenario-zoo matrix sweep over generated topologies.

The paper evaluates Sora on two fixed applications; this bench runs
the controller grid over *generated* topologies from the scenario zoo
(fan-out with a slow shard, cache-aside with an invalidation storm)
so the conclusions aren't an artifact of one hand-built call graph.
Each cell of the topology x workload x fault x controller matrix is an
independent seeded simulation; the runner persists every cell as JSON
plus a browsable index, and re-runs each cell to prove byte-identical
replay fingerprints.

Artifacts: the ASCII summary table (``extension_scenario_matrix.txt``),
a machine-readable digest (``.json``), and the full per-cell results
under ``<results>/matrix/``.
"""

from benchmarks._common import (
    RESULTS_DIR,
    SLA,
    SMOKE,
    once,
    publish,
    publish_json,
    scaled,
)
from repro.experiments.matrix import CellSpec, WorkloadSpec, run_matrix
from repro.scenarios import ZooParams

#: Matrix axes: 2 archetypes x 1 trace x 2 faults x 2 controllers.
ARCHETYPES = ("fanout_slow_shard", "cache_aside")
FAULTS = ("none", "interference")
CONTROLLERS = ("none", "sora")
DURATION = 20.0 if SMOKE else scaled(120.0)
PEAK_USERS = 30 if SMOKE else 100


def build_cells() -> list[CellSpec]:
    workload = WorkloadSpec(trace="slowly_varying", duration=DURATION,
                            peak_users=PEAK_USERS,
                            min_users=max(5, PEAK_USERS // 4))
    cells = []
    for archetype in ARCHETYPES:
        params = ZooParams(
            archetype=archetype,
            storm_at=DURATION / 2 if archetype == "cache_aside"
            else None,
            storm_duration=DURATION / 6)
        for fault in FAULTS:
            for controller in CONTROLLERS:
                cells.append(CellSpec(
                    params=params, workload=workload, fault=fault,
                    controller=controller, autoscaler="hpa",
                    sla=SLA, seed=42))
    return cells


def run() -> "MatrixResult":
    out = RESULTS_DIR / "matrix"
    return run_matrix(build_cells(), str(out), rerun_check=True)


def test_extension_scenario_matrix(benchmark):
    matrix = once(benchmark, run)
    publish("extension_scenario_matrix", matrix.summary_table())
    publish_json("extension_scenario_matrix", {
        "cells": len(matrix),
        "replay_failures": matrix.replay_failures,
        "goodput_rps": {r.cell.cell_id: r.goodput_rps
                        for r in matrix.cells},
    })

    assert len(matrix) == 8
    # Every cell reproduced byte-identically on its second run.
    assert matrix.replay_failures == []
    for result in matrix.cells:
        assert result.requests + result.failed <= result.submitted
        assert result.submitted > 0
    # Sora actually adapts the generated topologies' client pools
    # (smoke runs are shorter than one sampling window, so only the
    # full-scale run can demand it).
    if not SMOKE:
        sora = [r for r in matrix.cells
                if r.cell.controller == "sora"]
        assert any(r.adaptation_actions > 0 for r in sora)
