"""Figure 11 — ConScale vs Sora timeline under Large Variation.

Both systems adapt the Cart thread pool on top of a threshold-based
vertical autoscaler (K8s VPA), but ConScale's SCT model is throughput
centric: with no latency constraint it over-allocates threads, wasting
CPU on contention and missing the SLO; Sora's goodput knee picks the
latency-aware allocation.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    TRACE_DURATION,
    once,
    publish,
)

#: Tighter SLA than the timeline figures: latency-awareness only pays
#: when the threshold actually binds (cf. Table 3's 250 ms column).
SLA = 0.250
from repro.experiments import run_scenario, sock_shop_cart_scenario
from repro.experiments.reporting import ascii_table, series_table
from repro.workloads import large_variation


def run_pair():
    results = {}
    for controller in ("conscale", "sora"):
        trace = large_variation(duration=TRACE_DURATION,
                                peak_users=PEAK_USERS,
                                min_users=MIN_USERS)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller=controller, autoscaler="vpa",
            sla=SLA)
        results[controller] = run_scenario(scenario,
                                           duration=TRACE_DURATION)
    return results


def render(results) -> str:
    sections = []
    for controller, label in (("conscale", "ConScale (SCT model)"),
                              ("sora", "Sora (SCG model)")):
        result = results[controller]
        rt = result.response_time_series(interval=10.0)
        gp = result.goodput_series(interval=10.0)
        sections.append(series_table(
            {
                "p95 RT [ms]": (rt[0], rt[1] * 1000.0),
                "goodput [req/s]": gp,
                "CPU limit [cores]": result.series("cart.cores"),
                "CPU busy [cores]": result.series("cart.busy_cores"),
                "threads": result.series("cart.threads.allocation"),
            },
            step=TRACE_DURATION / 12, until=TRACE_DURATION,
            title=f"--- {label} ---"))
    rows = []
    for controller, label in (("conscale", "ConScale"), ("sora", "Sora")):
        result = results[controller]
        summary = result.summary_row()
        _times, threads = result.series("cart.threads.allocation")
        rows.append([label, summary["goodput_rps"], summary["p95_ms"],
                     summary["p99_ms"], round(float(threads.max()), 0)])
    sections.append(ascii_table(
        ["system", "goodput", "p95 [ms]", "p99 [ms]", "peak threads"],
        rows, title="Fig. 11 summary (Large Variation, SLA 250 ms)"))
    return "\n\n".join(sections)


def test_fig11_conscale_vs_sora(benchmark):
    results = once(benchmark, run_pair)
    publish("fig11_conscale_vs_sora", render(results))
    conscale, sora = results["conscale"], results["sora"]
    # Shape: Sora's latency-aware knee yields at least ConScale's
    # goodput under a binding SLA (the paper reports ~1.2-1.5x).
    assert sora.goodput() >= 0.98 * conscale.goodput()
    # Both actively adapt.
    assert conscale.adaptation_actions
    assert sora.adaptation_actions
