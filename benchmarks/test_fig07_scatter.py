"""Figures 6-7 — the concurrency-goodput scatter and its knee.

Reproduces the paper's Fig. 7: the same 3-minute Cart run sampled at
100 ms granularity, with goodput computed under two different RT
thresholds. The tight threshold reshapes the main sequence curve and
moves the knee — the core sensitivity the SCG model exploits.
"""

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.analysis import aggregate_scatter
from repro.app.topologies import build_sock_shop
from repro.core import SCGModel, ThreadPoolTarget
from repro.experiments.reporting import ascii_table
from repro.metrics.sampler import ConcurrencyGoodputSampler
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace

import math

DURATION = 180.0  # the paper's 3-minute window
TIGHT = 0.030
LOOSE = 0.200


def run_once():
    env = Environment()
    streams = RandomStreams(13)
    app = build_sock_shop(env, streams, cart_threads=30, cart_cores=2.0)
    cart = app.service("cart")
    duration = scaled(DURATION)
    trace = WorkloadTrace(
        "osc", duration, 420, 100,
        lambda u: 0.5 + 0.5 * math.sin(2 * math.pi * 6.0 * u))
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=5.0)
    target = ThreadPoolTarget(cart)
    samplers = {}
    for label, threshold in (("tight", TIGHT), ("loose", LOOSE)):
        sampler = ConcurrencyGoodputSampler(
            env,
            concurrency_integral=target.concurrency_integral,
            completion_source=target.completion_latencies,
            threshold_provider=lambda t=threshold: t,
            interval=0.1, name=label)
        sampler.start()
        samplers[label] = sampler
    driver.start()
    env.run(until=duration + 2.0)
    return samplers


def render(samplers) -> tuple[str, dict]:
    sections = []
    knees = {}
    for label, threshold in (("tight", TIGHT), ("loose", LOOSE)):
        sampler = samplers[label]
        q, gp = sampler.pairs()
        busy = q > 0
        quantized = np.round(q[busy] * 2) / 2
        aq, agp = aggregate_scatter(quantized, gp[busy])
        estimate = SCGModel().estimate(q, gp, threshold=threshold)
        knees[label] = estimate
        rows = [[f"{a:.1f}", round(g, 1)] for a, g in zip(aq, agp)]
        knee_text = ("no estimate" if estimate is None else
                     f"knee at Q={estimate.optimal_concurrency} "
                     f"({estimate.method}, degree "
                     f"{estimate.fit.degree})")
        sections.append(ascii_table(
            ["concurrency Q", "goodput [req/s]"], rows,
            title=f"--- {label} threshold "
                  f"({threshold * 1000:.0f} ms): {knee_text} ---"))
    return "\n\n".join(sections), knees


def test_fig07_scatter(benchmark):
    samplers = once(benchmark, run_once)
    text, knees = render(samplers)
    publish("fig07_scatter", text)
    tight, loose = knees["tight"], knees["loose"]
    assert tight is not None and loose is not None
    # Fig. 7's point: the threshold choice changes the identified knee —
    # the tight threshold caps usable concurrency earlier.
    assert tight.optimal_concurrency <= loose.optimal_concurrency
