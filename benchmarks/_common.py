"""Shared infrastructure for the table/figure reproduction benches.

Every benchmark regenerates one table or figure from the paper as
plain text: it prints the rendered output and also writes it to
``results/<name>.txt`` next to this directory so the artifacts survive
the pytest run.

Scaling: the paper's experiments are 12-minute, 3500-user runs on a
6-node cluster; these benches default to a few simulated minutes and a
few hundred closed-loop users (the controllers are rate-invariant).
Set ``REPRO_BENCH_SCALE`` (e.g. ``2.0``) to lengthen every run for
tighter statistics.
"""

from __future__ import annotations

import json
import os
import pathlib

#: Global duration multiplier (REPRO_BENCH_SCALE env var).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: CI-sized run requested via the examples/matrix smoke convention.
SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE", "") == "1"

#: Committed full-scale artifacts live here.
_FULL_SCALE_RESULTS = pathlib.Path(__file__).resolve().parent / "results"

#: Where rendered tables/figures land. ``REPRO_BENCH_RESULTS_DIR``
#: overrides explicitly; otherwise any reduced-scale run (SCALE < 1.0,
#: or a ``REPRO_EXAMPLE_SMOKE=1`` mini-matrix) is routed to
#: ``results/smoke/`` so a quick local or CI smoke can never clobber
#: the committed full-scale artifacts.
_env_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR")
if _env_dir:
    RESULTS_DIR = pathlib.Path(_env_dir)
elif SCALE < 1.0 or SMOKE:
    RESULTS_DIR = _FULL_SCALE_RESULTS / "smoke"
else:
    RESULTS_DIR = _FULL_SCALE_RESULTS

#: Default SLA for end-to-end goodput reporting; the paper uses 400 ms
#: for its timeline figures and Table 2.
SLA = 0.4

#: Trace length for Table 2/3 and the timeline figures (paper: 720 s).
TRACE_DURATION = 240.0 * SCALE

#: Closed-loop population at normalized load 1.0 (paper: 3500 users at
#: testbed scale; our substrate saturates around 450).
PEAK_USERS = 450
MIN_USERS = 80


def scaled(seconds: float) -> float:
    """Apply the global duration multiplier."""
    return seconds * SCALE


def publish(name: str, text: str) -> pathlib.Path:
    """Print a rendered table/figure and persist it under results/.

    Every text artifact a bench writes goes through here — the single
    place that decides *where* results land (see ``RESULTS_DIR``).
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    path = RESULTS_DIR / f"{name}.txt"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    return path


def publish_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable artifact under results/.

    The JSON twin of :func:`publish`, honoring the same smoke-run
    redirection.
    """
    path = RESULTS_DIR / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
