"""§6 "Scalability of Sora" — controller overhead measurements.

The paper reports that telemetry collection and critical-service
identification cost at most 5% CPU and ~50 ms of computation per pass
on their testbed. This bench measures the *wall-clock* cost of each
Sora analysis stage on realistic window sizes:

- SCG estimation over a 60 s window of 100 ms samples (~600 pairs),
- critical-path extraction + localization over thousands of traces,
- deadline propagation over the same window.
"""

import math
import time

import numpy as np

from benchmarks._common import once, publish, scaled
from repro.analysis.queueing import Station, solve_mva
from repro.app.topologies import build_sock_shop
from repro.core import (
    CriticalServiceLocator,
    DeadlinePropagator,
    SCGModel,
)
from repro.experiments.reporting import ascii_table
from repro.sim import Environment, RandomStreams
from repro.workloads import ClosedLoopDriver, WorkloadTrace


def collect_corpus():
    """One loaded run producing traces + a scatter to analyze."""
    env = Environment()
    streams = RandomStreams(23)
    app = build_sock_shop(env, streams, cart_threads=15, cart_cores=2.0)
    duration = scaled(120.0)
    trace = WorkloadTrace(
        "osc", duration, 420, 120,
        lambda u: 0.5 + 0.5 * math.sin(2 * math.pi * 6.0 * u))
    driver = ClosedLoopDriver(env, app, "cart", trace,
                              streams.stream("drv"), ramp_up=5.0)
    driver.start()
    env.run(until=duration + 2.0)
    traces = app.warehouse.traces(duration - 60.0, duration)
    return app, traces


def timed(fn, repeats=5):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_all():
    app, traces = collect_corpus()
    rng = np.random.default_rng(0)

    # SCG estimation on a 600-pair window (60 s at 100 ms).
    q = rng.uniform(0.5, 15.0, 600)
    gp = np.where(q < 8, 280 * q / 8, 280 - 6 * (q - 8)) + \
        rng.normal(0, 15, 600)
    model = SCGModel()
    scg_seconds, estimate = timed(
        lambda: model.estimate(q, np.clip(gp, 0, None), threshold=0.2))

    locator = CriticalServiceLocator(exclude=("front-end",))
    utilizations = {name: 0.5 for name in app.services}
    locate_seconds, report = timed(
        lambda: locator.locate(traces, utilizations))

    propagator = DeadlinePropagator(sla=0.4)
    propagate_seconds, _deadline = timed(
        lambda: propagator.propagate(traces, "cart"))

    mva_seconds, _ = timed(
        lambda: solve_mva([Station(f"s{i}", 0.01) for i in range(20)],
                          population=500, think_time=1.0))

    return {
        "traces": len(traces),
        "scg_ms": scg_seconds * 1000,
        "estimate": estimate,
        "locate_ms": locate_seconds * 1000,
        "report": report,
        "propagate_ms": propagate_seconds * 1000,
        "mva_ms": mva_seconds * 1000,
    }


def render(results) -> str:
    rows = [
        ["SCG estimate (600 pairs, degree search + Kneedle)",
         round(results["scg_ms"], 2)],
        [f"critical-service localization ({results['traces']} traces)",
         round(results["locate_ms"], 2)],
        [f"deadline propagation ({results['traces']} traces)",
         round(results["propagate_ms"], 2)],
        ["MVA sizing (20 stations, N=500)", round(results["mva_ms"], 2)],
    ]
    return ascii_table(
        ["analysis stage", "wall time [ms]"], rows,
        title="Controller overhead per control period "
              "(paper: ~50 ms compute, <=5% CPU)")


def test_scalability_overhead(benchmark):
    results = once(benchmark, run_all)
    publish("scalability_overhead", render(results))
    assert results["estimate"] is not None
    assert results["report"].critical_service is not None
    # The paper's claim: the analysis fits comfortably in a control
    # period. Generous bounds (CI machines vary).
    assert results["scg_ms"] < 250.0
    assert results["locate_ms"] < 2000.0
    assert results["propagate_ms"] < 2000.0
