"""Figure 1 — Kubernetes HPA alone cannot fix soft-resource
misallocation.

The paper's opening figure: HPA scales out the bottleneck Catalogue
service, but the over-allocated DB connection pool keeps flooding
catalogue-db, so end-to-end latency keeps spiking; Sora's runtime
adaptation of the connection pool removes the spikes.

Regenerates the three panels (end-to-end latency, Catalogue CPU,
established DB connections) as a shared-time-grid text table, plus a
summary comparison row.
"""

from benchmarks._common import SLA, TRACE_DURATION, once, publish
from repro.experiments import (
    run_scenario,
    series_table,
    sock_shop_catalogue_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import quick_varying


def run_pair():
    results = {}
    for controller in ("none", "sora"):
        trace = quick_varying(duration=TRACE_DURATION, peak_users=520,
                              min_users=150)
        scenario = sock_shop_catalogue_scenario(
            trace=trace, controller=controller, autoscaler="hpa",
            db_connections=60, sla=SLA)
        results[controller] = run_scenario(scenario,
                                           duration=TRACE_DURATION)
    return results


def render(results) -> str:
    sections = []
    for controller, label in (("none", "Kubernetes HPA (static pool)"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        rt = result.response_time_series(interval=10.0)
        conns = result.series(
            "catalogue.db->catalogue-db.allocation")
        in_use = result.series("catalogue.db->catalogue-db.in_use")
        busy = result.series("catalogue.busy_cores")
        sections.append(series_table(
            {
                "p95 RT [ms]": (rt[0], rt[1] * 1000.0),
                "catalogue busy [cores]": busy,
                "DB conns alloc": conns,
                "DB conns in use": in_use,
            },
            step=TRACE_DURATION / 12, until=TRACE_DURATION,
            title=f"--- {label} ---"))
    rows = []
    for controller, label in (("none", "Kubernetes HPA"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        summary = result.summary_row()
        rows.append([label, summary["goodput_rps"], summary["p95_ms"],
                     summary["p99_ms"]])
    sections.append(ascii_table(
        ["system", "goodput [req/s]", "p95 [ms]", "p99 [ms]"], rows,
        title="Fig. 1 summary (SLA 400 ms, Quick Varying workload)"))
    return "\n\n".join(sections)


def test_fig01_hpa_overallocation(benchmark):
    results = once(benchmark, run_pair)
    publish("fig01_hpa_overallocation", render(results))
    # Shape assertions: Sora must tame the spikes the static pool causes.
    assert results["sora"].goodput() >= results["none"].goodput()
    assert results["sora"].percentile(99) <= \
        results["none"].percentile(99) * 1.05
