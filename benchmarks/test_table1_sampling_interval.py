"""Table 1 — SCG estimation accuracy vs sampling interval.

The paper samples ``<Q, GP>`` pairs at {10,20,50,100,200,500} ms and
reports the MAPE of the estimated optimal concurrency against the true
optimum for Cart, Catalogue, and Post Storage; 100 ms wins.

Reproduction: for each service, (1) find the ground-truth optimum by a
small allocation sweep, then (2) run one instrumented scenario with six
parallel samplers (one per interval) and re-estimate every 15 s; MAPE
is computed over the estimate series per interval.
"""

import functools

from benchmarks._common import once, publish, scaled
from benchmarks._subjects import ALL_SUBJECTS, THRESHOLD
from repro.core import SCGModel
from repro.experiments import parallel_map, sweep
from repro.experiments.reporting import ascii_table
from repro.metrics import mape
from repro.metrics.sampler import ConcurrencyGoodputSampler

INTERVALS = [0.010, 0.020, 0.050, 0.100, 0.200, 0.500]
SWEEP_DURATION = 60.0
ESTIMATION_DURATION = 180.0
ESTIMATE_EVERY = 15.0
WINDOW = 60.0

_SUBJECTS = {subject.name: subject for subject in ALL_SUBJECTS}


def instrumented_run(subject, allocation, duration, seed):
    env, app, target = subject.start_run(allocation, duration, seed)
    samplers = {}
    estimates: dict[float, list[int]] = {i: [] for i in INTERVALS}
    for interval in INTERVALS:
        sampler = ConcurrencyGoodputSampler(
            env,
            concurrency_integral=target.concurrency_integral,
            completion_source=target.completion_latencies,
            threshold_provider=lambda: THRESHOLD,
            interval=interval, name=f"{subject.name}@{interval}")
        sampler.start()
        samplers[interval] = sampler

    model = SCGModel()

    def estimation_loop():
        while True:
            yield env.timeout(ESTIMATE_EVERY)
            if env.now < WINDOW:
                continue
            for interval, sampler in samplers.items():
                q, gp = sampler.pairs(since=env.now - WINDOW)
                estimate = model.estimate(q, gp, threshold=THRESHOLD)
                if estimate is not None:
                    estimates[interval].append(
                        estimate.optimal_concurrency)

    env.process(estimation_loop(), name="table1-estimator")
    env.run(until=duration + 2.0)
    return estimates


def _ground_truth_goodput(subject_name, allocation):
    """Goodput of one (subject, allocation) grid point — module-level
    (via functools.partial) so sweep's worker pool can run it."""
    subject = _SUBJECTS[subject_name]
    duration = scaled(SWEEP_DURATION)
    env, app, _t = subject.start_run(allocation, duration, seed=31)
    env.run(until=duration + 2.0)
    return subject.goodput(app, duration)


def _instrumented(subject_name):
    """One instrumented estimation run, by subject name (picklable)."""
    subject = _SUBJECTS[subject_name]
    liberal = max(subject.sweep_candidates) * 3
    return instrumented_run(
        subject, liberal, scaled(ESTIMATION_DURATION), seed=32)


def run_all():
    # Ground truths: one goodput sweep per subject, each fanned out
    # over the allocation grid (independent simulations).
    truths = {}
    sweeps = {}
    for subject in ALL_SUBJECTS:
        result = sweep(
            list(subject.sweep_candidates),
            functools.partial(_ground_truth_goodput, subject.name),
            parallel=True)
        truths[subject.name] = result.best
        sweeps[subject.name] = result.metric_by_value
    # Instrumented runs (one per subject, with a liberal allocation so
    # the scatter covers the knee) are likewise independent.
    estimate_runs = parallel_map(
        _instrumented, [subject.name for subject in ALL_SUBJECTS])
    return {
        subject.name: (truths[subject.name], sweeps[subject.name],
                       estimates)
        for subject, estimates in zip(ALL_SUBJECTS, estimate_runs)
    }


def render(outcome) -> tuple[str, dict]:
    mape_by = {}
    rows = []
    for name, (truth, _sweep, estimates) in outcome.items():
        row = [name, truth]
        mape_by[name] = {}
        for interval in INTERVALS:
            values = estimates.get(interval, [])
            if values:
                error = mape([truth] * len(values), values)
            else:
                error = float("nan")
            mape_by[name][interval] = error
            row.append("-" if error != error else round(error, 1))
        rows.append(row)
    headers = (["service", "true optimum"] +
               [f"{int(i * 1000)}ms" for i in INTERVALS])
    table = ascii_table(
        headers, rows,
        title="Table 1: optimal-concurrency MAPE [%] per sampling "
              "interval (lower is better; paper's best: 100 ms)")
    return table, mape_by


def test_table1_sampling_interval(benchmark):
    outcome = once(benchmark, run_all)
    text, mape_by = render(outcome)
    publish("table1_sampling_interval", text)
    for name, by_interval in mape_by.items():
        valid = {i: e for i, e in by_interval.items() if e == e}
        assert valid, f"{name}: no estimates at any interval"
        # Shape: mid-range sampling (50-200 ms) must not lose to the
        # extremes (the paper's U-shape, minimum at 100 ms).
        mid_values = [e for i, e in valid.items() if 0.05 <= i <= 0.2]
        assert mid_values, f"{name}: no mid-range estimates"
        if not mid_values:
            # Assertion-free smoke runs at tiny scale may produce no
            # estimates at all; there is no shape left to check.
            continue
        mid = min(mid_values)
        extremes = [e for i, e in valid.items()
                    if i <= 0.02 or i >= 0.5]
        if extremes:
            assert mid <= min(extremes) + 15.0, (
                f"{name}: mid-interval MAPE {mid:.1f}% much worse than "
                f"extremes {extremes}")
