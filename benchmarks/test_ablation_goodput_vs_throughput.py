"""Ablation — goodput (SCG) vs throughput (SCT) as the knee metric.

§5.2's discussion: you cannot just swap throughput for goodput inside
ConScale, because the latency constraint is what pulls the knee back
from the throughput-maximizing (but SLO-violating) allocation. This
ablation runs the *same* adaptation framework with only the model
swapped, on the same trace.
"""

from benchmarks._common import (
    MIN_USERS,
    PEAK_USERS,
    SLA,
    TRACE_DURATION,
    once,
    publish,
)
from repro.experiments import (
    run_scenario,
    social_network_drift_scenario,
    sock_shop_cart_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import large_variation


def run_all():
    results = {}
    for controller in ("sora", "conscale"):
        trace = large_variation(duration=TRACE_DURATION,
                                peak_users=PEAK_USERS,
                                min_users=MIN_USERS)
        scenario = sock_shop_cart_scenario(
            trace=trace, controller=controller, autoscaler="vpa",
            sla=SLA)
        results["cart", controller] = run_scenario(
            scenario, duration=TRACE_DURATION)
    # The connection-pool case exposes the latency-blindness sharply:
    # after the drift, admitting more concurrency melts the downstream
    # store; the throughput model cannot see the damage.
    for controller in ("sora", "conscale"):
        trace = large_variation(duration=TRACE_DURATION, peak_users=560,
                                min_users=260)
        scenario = social_network_drift_scenario(
            trace=trace, controller=controller, autoscaler="hpa",
            drift_at=TRACE_DURATION / 3.0, sla=SLA)
        results["drift", controller] = run_scenario(
            scenario, duration=TRACE_DURATION)
    return results


def render(results) -> str:
    sections = []
    for case, case_label in (("cart", "Cart thread pool "
                                      "(Large Variation + VPA)"),
                             ("drift", "Post Storage connections "
                                       "(state drift + HPA)")):
        rows = []
        for controller, label in (("sora", "SCG (goodput knee)"),
                                  ("conscale", "SCT (throughput knee)")):
            result = results[case, controller]
            summary = result.summary_row()
            rows.append([label, summary["goodput_rps"],
                         summary["throughput_rps"], summary["p95_ms"],
                         summary["p99_ms"]])
        sections.append(ascii_table(
            ["model", "goodput", "throughput", "p95 [ms]", "p99 [ms]"],
            rows,
            title=f"Ablation: goodput vs throughput knee — {case_label}"))
    return "\n\n".join(sections)


def test_ablation_goodput_vs_throughput(benchmark):
    results = once(benchmark, run_all)
    publish("ablation_goodput_vs_throughput", render(results))
    # Cart case: near-tie at a generous SLA (documented divergence:
    # our overhead model couples throughput and latency degradation).
    sora, sct = results["cart", "sora"], results["cart", "conscale"]
    assert sora.goodput() >= 0.95 * sct.goodput()
    # Drift case: the latency-aware model must clearly win — the
    # throughput model keeps over-admitting into the melted store.
    sora_d = results["drift", "sora"]
    sct_d = results["drift", "conscale"]
    assert sora_d.goodput() >= sct_d.goodput()
    assert sora_d.percentile(95) <= sct_d.percentile(95) * 1.1
