"""Figure 12 — Kubernetes HPA vs Sora under system-state drift.

Mid-run, Read-Home-Timeline requests flip from light (2 posts) to
heavy (10 posts), stressing the downstream post store. HPA adds Post
Storage replicas but the stale request-connection allocation keeps
melting the downstream; Sora re-estimates the per-replica optimum,
re-sizes the shared ClientPool, and tracks the replica count.
"""

from benchmarks._common import SLA, TRACE_DURATION, once, publish
from repro.experiments import (
    run_scenario,
    series_table,
    social_network_drift_scenario,
)
from repro.experiments.reporting import ascii_table
from repro.workloads import large_variation

DRIFT_AT = TRACE_DURATION / 3.0


def run_pair():
    results = {}
    for controller in ("none", "sora"):
        trace = large_variation(duration=TRACE_DURATION, peak_users=560,
                                min_users=260)
        scenario = social_network_drift_scenario(
            trace=trace, controller=controller, autoscaler="hpa",
            drift_at=DRIFT_AT, sla=SLA)
        results[controller] = run_scenario(scenario,
                                           duration=TRACE_DURATION)
    return results


def render(results) -> str:
    sections = [f"request type drifts light -> heavy at "
                f"t={DRIFT_AT:.0f} s"]
    conn_key = "home-timeline.poststorage->post-storage"
    for controller, label in (("none", "Kubernetes HPA (static pool)"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        rt = result.response_time_series(interval=10.0)
        gp = result.goodput_series(interval=10.0)
        sections.append(series_table(
            {
                "p95 RT [ms]": (rt[0], rt[1] * 1000.0),
                "goodput [req/s]": gp,
                "conns alloc": result.series(f"{conn_key}.allocation"),
                "conns in use": result.series(f"{conn_key}.in_use"),
                "replicas": result.series("post-storage.replicas"),
            },
            step=TRACE_DURATION / 12, until=TRACE_DURATION,
            title=f"--- {label} ---"))
    rows = []
    for controller, label in (("none", "Kubernetes HPA"),
                              ("sora", "HPA + Sora")):
        result = results[controller]
        drifted = result.completion_times > DRIFT_AT
        import numpy as np
        heavy_latencies = result.response_times[drifted]
        heavy_goodput = float(
            np.count_nonzero(heavy_latencies <= SLA)) / (
                TRACE_DURATION - DRIFT_AT)
        heavy_p95 = (float(np.percentile(heavy_latencies, 95)) * 1000
                     if heavy_latencies.size else 0.0)
        summary = result.summary_row()
        rows.append([label, summary["goodput_rps"],
                     round(heavy_goodput, 1), round(heavy_p95, 1)])
    sections.append(ascii_table(
        ["system", "goodput (whole run)", "goodput (post-drift)",
         "p95 post-drift [ms]"],
        rows, title="Fig. 12 summary (Large Variation + drift, "
                    "SLA 400 ms)"))
    return "\n\n".join(sections)


def test_fig12_state_drift(benchmark):
    results = once(benchmark, run_pair)
    publish("fig12_state_drift", render(results))
    hpa, sora = results["none"], results["sora"]
    # Shape: after the drift Sora recovers; static pools stay degraded.
    assert sora.goodput() > hpa.goodput()
    # Sora must have re-sized the connection pool.
    assert any(a.after != a.before for a in sora.adaptation_actions)
