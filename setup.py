"""Setup shim: enables legacy editable installs (`pip install -e .`)
in environments without the `wheel` package (PEP 660 unavailable)."""

from setuptools import setup

setup()
